/**
 * @file
 * Synthetic graph generators standing in for the SNAP datasets the paper
 * uses (roadNet-CA and com-Youtube; see DESIGN.md substitutions).
 *
 *  - Road-like: a 2D lattice with random perturbations — high diameter,
 *    degree ~<=4, long BFS frontier progression (many levels).
 *  - Youtube-like: preferential attachment — heavy-tailed degrees, tiny
 *    diameter, huge frontiers after two hops.
 */

#ifndef PFM_WORKLOADS_GRAPH_H
#define PFM_WORKLOADS_GRAPH_H

#include <cstdint>
#include <vector>

namespace pfm {

/** CSR graph (GAP-style: offsets into a flat neighbor array). */
struct CsrGraph {
    std::uint32_t num_nodes = 0;
    std::vector<std::uint64_t> offsets;   ///< num_nodes + 1
    std::vector<std::uint32_t> neighbors;

    std::uint32_t degree(std::uint32_t u) const
    {
        return static_cast<std::uint32_t>(offsets[u + 1] - offsets[u]);
    }
};

/** Lattice road network: side x side nodes, ~4-neighborhood with deletions. */
CsrGraph makeRoadGraph(unsigned side, std::uint64_t seed,
                       double edge_drop_prob = 0.1);

/** Preferential-attachment graph with @p nodes nodes, ~deg mean degree. */
CsrGraph makeYoutubeGraph(unsigned nodes, unsigned deg, std::uint64_t seed);

} // namespace pfm

#endif // PFM_WORKLOADS_GRAPH_H
