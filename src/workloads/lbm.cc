#include "workloads/lbm.h"

#include <sstream>

#include "common/rng.h"
#include "isa/assembler.h"

namespace pfm {

namespace {

/**
 * x2 i, x3 cells, x4 round, x5 rounds, x14 src (sweep pointer start),
 * x16 dst base, x17 src addr, x19 dst addr.
 */
std::string
buildLbmAsm(std::uint64_t plane_bytes, std::uint64_t row_bytes)
{
    std::ostringstream os;
    os << "lbm:\n"
          "roi_begin: mv x20, x14\n"
          "round_loop:\n"
          "    mv  x17, x14\n"
          "    mv  x19, x16\n"
          "    li  x2, 0\n"
          "cell_loop:\n"
          "del0: fld f1, 0(x17)\n"
       << "del1: fld f2, " << row_bytes << "(x17)\n"
       << "del2: fld f3, -" << row_bytes << "(x17)\n"
       << "del3: fld f4, " << plane_bytes << "(x17)\n"
       << "del4: fld f5, -" << plane_bytes << "(x17)\n"
       << "    fadd f6, f1, f2\n"
          "    fadd f6, f6, f3\n"
          "    fadd f7, f4, f5\n"
          "    fmul f6, f6, f7\n"
          "    fsd  f6, 0(x19)\n"
          "    addi x17, x17, 8\n"
          "    addi x19, x19, 8\n"
          "    addi x2, x2, 1\n"
          "    blt  x2, x3, cell_loop\n"
          "    addi x4, x4, 1\n"
          "    blt  x4, x5, round_loop\n"
          "    halt\n";
    return os.str();
}

} // namespace

Workload
makeLbmWorkload(const LbmConfig& cfg)
{
    Workload w;
    w.name = "lbm";
    w.mem = std::make_shared<SimMemory>();
    Rng rng(cfg.seed);

    std::uint64_t plane_bytes = static_cast<std::uint64_t>(cfg.plane) * 8;
    std::uint64_t row_bytes = static_cast<std::uint64_t>(cfg.row) * 8;

    // Guard band before/after the swept region for the negative offsets.
    Addr src_region = w.mem->alloc((cfg.cells + 2 * cfg.plane) * 8, 64);
    Addr src = src_region + plane_bytes;
    Addr dst = w.mem->alloc(cfg.cells * 8, 64);
    for (std::uint64_t i = 0; i < cfg.cells; i += 997)
        w.mem->write<double>(src + i * 8, rng.real());

    w.program = assemble(buildLbmAsm(plane_bytes, row_bytes));
    w.entry = w.program.labelPc("lbm");

    w.init_regs = {
        {2, 0}, {3, cfg.cells}, {4, 0}, {5, cfg.rounds},
        {14, src}, {16, dst},
    };
    for (const char* key :
         {"roi_begin", "del0", "del1", "del2", "del3", "del4"})
        w.pcs[key] = w.program.labelPc(key);
    w.data = {{"src", src}, {"dst", dst}};
    w.meta = {{"cells", cfg.cells},
              {"plane_bytes", plane_bytes},
              {"row_bytes", row_bytes}};
    return w;
}

} // namespace pfm
