#include "workloads/bwaves.h"

#include <sstream>

#include "common/rng.h"
#include "isa/assembler.h"

namespace pfm {

namespace {

/**
 * x2 round, x3 rounds, x4 j, x5 i, x6 k, x7 NJ, x8 NI, x9 NK,
 * x14 A base, x15 B base, x16 C base, x17 A addr, x18 B addr, x19 C addr,
 * x22 tmp.
 */
constexpr unsigned kElemBytes = 192;

std::string
buildBwavesAsm(unsigned ni, unsigned nj)
{
    // 192-byte elements (the PDE-component block per grid point): element
    // strides span three lines, so neighboring i iterations touch
    // non-adjacent lines (next-line prefetching cannot cover them), and
    // the inner k loop strides by a full plane — a fresh page per access.
    std::uint64_t stride_k =
        static_cast<std::uint64_t>(ni) * nj * kElemBytes;
    std::ostringstream os;
    os << "bwaves:\n"
          "roi_begin: mv x20, x14\n"
          "round_loop:\n"
          "    li  x4, 0\n"
          "    mv  x19, x16\n"
          "j_loop:\n"
          "    li  x5, 0\n"
          "i_loop:\n"
          "    li  x6, 0\n"
          // addrA = A + (j*NI + i)*8 ; k advances by a plane each step.
       << "    mul  x17, x4, x8\n"
          "    add  x17, x17, x5\n"
       << "    li   x22, " << kElemBytes << "\n"
          "    mul  x17, x17, x22\n"
          "    add  x18, x17, x15\n"
          "    add  x17, x17, x14\n"
          "    fsub f4, f4, f4\n"            // acc = 0
          "k_loop:\n"
          "del_load_a: fld f1, 0(x17)\n"
          "del_load_b: fld f2, 0(x18)\n"
          "    fmul f3, f1, f2\n"
          "    fadd f4, f4, f3\n"
       << "    addi x17, x17, " << stride_k << "\n"
       << "    addi x18, x18, " << stride_k << "\n"
       << "    addi x6, x6, 1\n"
          "    blt  x6, x9, k_loop\n"
          "    fsd  f4, 0(x19)\n"
          "    addi x19, x19, 8\n"
          "    addi x5, x5, 1\n"
          "    blt  x5, x8, i_loop\n"
          "    addi x4, x4, 1\n"
          "    blt  x4, x7, j_loop\n"
          "    addi x2, x2, 1\n"
          "    blt  x2, x3, round_loop\n"
          "    halt\n";
    return os.str();
}

} // namespace

Workload
makeBwavesWorkload(const BwavesConfig& cfg)
{
    Workload w;
    w.name = "bwaves";
    w.mem = std::make_shared<SimMemory>();
    Rng rng(cfg.seed);

    std::uint64_t elems =
        static_cast<std::uint64_t>(cfg.ni) * cfg.nj * cfg.nk;
    Addr a = w.mem->alloc(elems * kElemBytes, 64);
    Addr b = w.mem->alloc(elems * kElemBytes, 64);
    Addr c = w.mem->alloc(static_cast<std::uint64_t>(cfg.ni) * cfg.nj * 8, 64);

    // Sparse init is fine: untouched pages read as 0.0.
    for (std::uint64_t i = 0; i < elems; i += 997) {
        w.mem->write<double>(a + i * kElemBytes, rng.real());
        w.mem->write<double>(b + i * kElemBytes, rng.real());
    }

    w.program = assemble(buildBwavesAsm(cfg.ni, cfg.nj));
    w.entry = w.program.labelPc("bwaves");

    w.init_regs = {
        {2, 0},  {3, cfg.rounds}, {7, cfg.nj}, {8, cfg.ni}, {9, cfg.nk},
        {14, a}, {15, b},         {16, c},
    };
    for (const char* key : {"roi_begin", "del_load_a", "del_load_b"})
        w.pcs[key] = w.program.labelPc(key);
    w.data = {{"a", a}, {"b", b}, {"c", c}};
    w.meta = {{"ni", cfg.ni},
              {"nj", cfg.nj},
              {"nk", cfg.nk},
              {"stride_k",
               static_cast<std::uint64_t>(cfg.ni) * cfg.nj * kElemBytes},
              {"elem", kElemBytes}};
    return w;
}

} // namespace pfm
