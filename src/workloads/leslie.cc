#include "workloads/leslie.h"

#include <sstream>

#include "common/rng.h"
#include "isa/assembler.h"

namespace pfm {

namespace {

/**
 * Three ROIs per round:
 *  ROI1: streaming copy u -> wrk (stride 8)
 *  ROI2: transposed read of u (stride NY*8 inner, +8 outer)
 *  ROI3: +/-NX stencil over v
 *
 * x2 idx, x3 limit, x4 j, x5 round, x6 rounds,
 * x14 u, x15 v, x16 wrk, x17/x18/x19 addr tmps, x7 NY, x8 NX.
 */
std::string
buildLeslieAsm(unsigned nx, unsigned ny, unsigned nz)
{
    std::uint64_t n2 = static_cast<std::uint64_t>(nx) * ny;
    std::uint64_t n3 = n2 * nz;
    std::uint64_t row_bytes = static_cast<std::uint64_t>(nx) * 8;
    std::ostringstream os;
    os << "leslie:\n"
          "roi_begin: mv x20, x14\n"
          "round_loop:\n"
          // ROI1: streaming copy, n3 elements.
          "    mv  x17, x14\n"
          "    mv  x19, x16\n"
          "    li  x2, 0\n"
       << "    li  x3, " << n3 << "\n"
       << "r1_loop:\n"
          "del_r1: fld f1, 0(x17)\n"
          "    fadd f1, f1, f2\n"
          "    fsd  f1, 0(x19)\n"
          "    addi x17, x17, 8\n"
          "    addi x19, x19, 8\n"
          "    addi x2, x2, 1\n"
          "    blt  x2, x3, r1_loop\n"
          // ROI2: transposed: for j in [0,NX): for i in [0,NY):
          //   read u[i*NX + j]  (inner stride = NX*8)
          "    li  x4, 0\n"
          "r2_outer:\n"
          "    slli x17, x4, 3\n"
          "    add  x17, x17, x14\n"
          "    li  x2, 0\n"
          "r2_loop:\n"
          "del_r2: fld f1, 0(x17)\n"
          "    fadd f3, f3, f1\n"
       << "    addi x17, x17, " << row_bytes << "\n"
       << "    addi x2, x2, 1\n"
          "    blt  x2, x7, r2_loop\n"
          "    addi x4, x4, 1\n"
          "    blt  x4, x8, r2_outer\n"
          // ROI3: stencil over v: v[i-NX], v[i], v[i+NX].
       << "    mv  x18, x15\n"
          "    li  x2, 0\n"
       << "    li  x3, " << (n3 - 2 * nx) << "\n"
       << "r3_loop:\n"
       << "del_r3: fld f1, " << row_bytes << "(x18)\n"
       << "    fld  f2, 0(x18)\n"
          "    fadd f1, f1, f2\n"
          "    fsd  f1, 0(x18)\n"
          "    addi x18, x18, 8\n"
          "    addi x2, x2, 1\n"
          "    blt  x2, x3, r3_loop\n"
          "    addi x5, x5, 1\n"
          "    blt  x5, x6, round_loop\n"
          "    halt\n";
    return os.str();
}

} // namespace

Workload
makeLeslieWorkload(const LeslieConfig& cfg)
{
    Workload w;
    w.name = "leslie";
    w.mem = std::make_shared<SimMemory>();
    Rng rng(cfg.seed);

    std::uint64_t n3 =
        static_cast<std::uint64_t>(cfg.nx) * cfg.ny * cfg.nz;
    Addr u = w.mem->alloc(n3 * 8, 64);
    Addr v = w.mem->alloc(n3 * 8, 64);
    Addr wrk = w.mem->alloc(n3 * 8, 64);
    for (std::uint64_t i = 0; i < n3; i += 499) {
        w.mem->write<double>(u + i * 8, rng.real());
        w.mem->write<double>(v + i * 8, rng.real());
    }

    w.program = assemble(buildLeslieAsm(cfg.nx, cfg.ny, cfg.nz));
    w.entry = w.program.labelPc("leslie");

    w.init_regs = {
        {5, 0}, {6, cfg.rounds}, {7, cfg.ny}, {8, cfg.nx},
        {14, u}, {15, v}, {16, wrk},
    };
    for (const char* key : {"roi_begin", "del_r1", "del_r2", "del_r3"})
        w.pcs[key] = w.program.labelPc(key);
    w.data = {{"u", u}, {"v", v}, {"wrk", wrk}};
    w.meta = {{"nx", cfg.nx}, {"ny", cfg.ny}, {"nz", cfg.nz}};
    return w;
}

} // namespace pfm
