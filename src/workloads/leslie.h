/**
 * @file
 * leslie3d-style ROI: multiple distinct loop-nest ROIs executed in
 * sequence per timestep, each contributing load misses with a different
 * (2- to 3-deep) nested stride pattern; the custom prefetcher implements
 * one FSM per ROI (Section 4.3).
 */

#ifndef PFM_WORKLOADS_LESLIE_H
#define PFM_WORKLOADS_LESLIE_H

#include "workloads/workload.h"

namespace pfm {

struct LeslieConfig {
    unsigned nx = 256;
    unsigned ny = 256;
    unsigned nz = 16;
    unsigned rounds = 3;
    std::uint64_t seed = 23;
};

/**
 * Annotations:
 *  pcs:  roi_begin, del_r1 (streaming), del_r2 (transposed), del_r3
 *        (stencil)
 *  data: u, v, wrk
 *  meta: nx, ny, nz
 */
Workload makeLeslieWorkload(const LeslieConfig& cfg = {});

} // namespace pfm

#endif // PFM_WORKLOADS_LESLIE_H
