#include "workloads/libquantum.h"

#include "common/rng.h"
#include "isa/assembler.h"

namespace pfm {

namespace {

/**
 * x2 i, x3 nodes, x9 state, x14 reg base, x17 addr, x22 tmp,
 * x24/x25/x26 c1/c2/target masks, x28 round, x29 rounds.
 */
const char* kLibqAsm = R"(
libq:
roi_begin:  mv x20, x14
snoop_count: mv x21, x3
round_loop:
    mv  x17, x14
    li  x2, 0
tof_loop:
del_load_tof: ld x9, 0(x17)
    and x22, x9, x24
    beq x22, x0, tof_skip
    and x22, x9, x25
    beq x22, x0, tof_skip
    xor x9, x9, x26
    sd  x9, 0(x17)
tof_skip:
    addi x17, x17, 16
    addi x2, x2, 1
    blt  x2, x3, tof_loop

    mv  x17, x14
    li  x2, 0
sig_loop:
del_load_sig: ld x9, 0(x17)
    xor x9, x9, x26
    sd  x9, 0(x17)
    addi x17, x17, 16
    addi x2, x2, 1
    blt  x2, x3, sig_loop

    addi x28, x28, 1
    blt  x28, x29, round_loop
    halt
)";

} // namespace

Workload
makeLibquantumWorkload(const LibquantumConfig& cfg)
{
    Workload w;
    w.name = "libquantum";
    w.mem = std::make_shared<SimMemory>();
    Rng rng(cfg.seed);

    Addr reg = w.mem->alloc(cfg.nodes * 16, 64);
    for (std::uint64_t i = 0; i < cfg.nodes; ++i)
        w.mem->write<std::uint64_t>(reg + i * 16, rng.next());

    w.program = assemble(kLibqAsm);
    w.entry = w.program.labelPc("libq");

    w.init_regs = {
        {3, cfg.nodes},
        {14, reg},
        {24, 1u << 3},  // c1 mask
        {25, 1u << 7},  // c2 mask
        {26, 1u << 11}, // target mask
        {28, 0},
        {29, cfg.rounds},
    };

    for (const char* key : {"roi_begin", "del_load_tof", "del_load_sig"})
        w.pcs[key] = w.program.labelPc(key);
    w.data = {{"reg", reg}};
    w.meta = {{"nodes", cfg.nodes}, {"stride", 16}};
    return w;
}

} // namespace pfm
