#include "workloads/registry.h"

#include "common/log.h"
#include "workloads/astar.h"
#include "workloads/bfs.h"
#include "workloads/bwaves.h"
#include "workloads/lbm.h"
#include "workloads/leslie.h"
#include "workloads/libquantum.h"
#include "workloads/milc.h"

namespace pfm {

Workload
makeWorkload(const std::string& name)
{
    if (name == "astar")
        return makeAstarWorkload();
    if (name == "bfs-roads") {
        BfsConfig cfg;
        cfg.input = BfsInput::kRoads;
        return makeBfsWorkload(cfg);
    }
    if (name == "bfs-youtube") {
        BfsConfig cfg;
        cfg.input = BfsInput::kYoutube;
        return makeBfsWorkload(cfg);
    }
    // Million-node tiers (streaming O(V+E) generation keeps their
    // construction sub-second): same kernels, roadNet/com-youtube scale.
    if (name == "bfs-roads-1m") {
        BfsConfig cfg;
        cfg.input = BfsInput::kRoads;
        cfg.road_side = 1000;
        Workload w = makeBfsWorkload(cfg);
        w.name = name;
        return w;
    }
    if (name == "bfs-youtube-1m") {
        BfsConfig cfg;
        cfg.input = BfsInput::kYoutube;
        cfg.youtube_nodes = 1'000'000;
        Workload w = makeBfsWorkload(cfg);
        w.name = name;
        return w;
    }
    if (name == "libquantum")
        return makeLibquantumWorkload();
    if (name == "bwaves")
        return makeBwavesWorkload();
    if (name == "lbm")
        return makeLbmWorkload();
    if (name == "milc")
        return makeMilcWorkload();
    if (name == "leslie")
        return makeLeslieWorkload();
    pfm_fatal("unknown workload '%s'", name.c_str());
}

std::vector<std::string>
workloadNames()
{
    return {"astar", "bfs-roads", "bfs-youtube", "bfs-roads-1m",
            "bfs-youtube-1m", "libquantum", "bwaves", "lbm", "milc",
            "leslie"};
}

} // namespace pfm
