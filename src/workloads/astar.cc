#include "workloads/astar.h"

#include <sstream>

#include "common/log.h"
#include "common/rng.h"
#include "isa/assembler.h"

namespace pfm {

namespace {

/**
 * Register allocation for the kernel:
 *  x1  ra                  x2  i            x3  bound1l   x4  in base
 *  x5  out base            x6  bound2l      x7  index     x8  index1
 *  x9  loaded value        x11 fillnum      x12 step      x13 yoffset
 *  x14 waymap base         x15 maparp base  x16 endindex  x17 addr tmp
 *  x18 flend               x20-x24 snoop destinations     x22 addr tmp2
 *  x26 bound1p base        x27 bound2p base
 */
std::string
buildAstarAsm(unsigned side)
{
    std::ostringstream os;
    os << "fill:\n"
          "roi_begin:  addi x11, x11, 1\n"      // fillnum++
          "snoop_waymap: mv x23, x14\n"
          "snoop_maparp: mv x24, x15\n"
          "    li  x12, 0\n"                    // step = 0
          "    li  x18, 0\n"                    // flend = false
          "fill_loop:\n"
          "    beq x3, x0, fill_done\n"         // while bound1l != 0
          "    bne x18, x0, fill_done\n"        // && !flend
          "    mv  x4, x26\n"                   // even call: in = bound1p
          "    mv  x5, x27\n"
          "    call makebound2\n"
          "    mv  x3, x6\n"
          "    addi x12, x12, 1\n"              // step++
          "    beq x3, x0, fill_done\n"
          "    bne x18, x0, fill_done\n"
          "    mv  x4, x27\n"                   // odd call: worklists swap
          "    mv  x5, x26\n"
          "    call makebound2\n"
          "    mv  x3, x6\n"
          "    addi x12, x12, 1\n"
          "    j   fill_loop\n"
          "fill_done:\n"
          "    halt\n"
          "\n"
          "makebound2:\n"
          "snoop_yoffset: mv x20, x13\n"        // per-call marker (line 14)
          "snoop_inbase:  mv x21, x4\n"         // input worklist base
          "    li  x2, 0\n"                     // i = 0
          "    li  x6, 0\n"                     // bound2l = 0
          "loop:\n"
          "    bge x2, x3, loop_end\n"          // for (i = 0; i < bound1l; )
          "    slli x17, x2, 2\n"
          "    add  x17, x17, x4\n"
          "    lw   x7, 0(x17)\n"               // index = bound1p[i]
          "snoop_induction: addi x2, x2, 1\n";  // i++ (commit-head tracking)

    // The eight neighbor blocks (Figure 6's repeated nested-if template).
    const long w = static_cast<long>(side);
    const long offsets[8] = {-w - 1, -w, -w + 1, -1, +1, w - 1, w, w + 1};
    for (int n = 0; n < 8; ++n) {
        os << "nb" << n << ":\n"
           << "    addi x8, x7, " << offsets[n] << "\n"   // index1
           << "    slli x17, x8, 3\n"
           << "    add  x17, x17, x14\n"                  // &waymap[index1]
           << "    lw   x9, 0(x17)\n"                     // .fillnum
           << "br_way" << n << ": beq x9, x11, nb" << (n + 1) << "\n"
           << "    slli x22, x8, 2\n"
           << "    add  x22, x22, x15\n"                  // &maparp[index1]
           << "    lw   x9, 0(x22)\n"
           << "br_map" << n << ": bne x9, x0, nb" << (n + 1) << "\n"
           << "    slli x22, x6, 2\n"
           << "    add  x22, x22, x5\n"
           << "st_out" << n << ": sw x8, 0(x22)\n"        // bound2p[bound2l]
           << "    addi x6, x6, 1\n"
           << "st_way" << n << ": sw x11, 0(x17)\n"       // fillnum store
           << "    sw   x12, 4(x17)\n"                    // .num = step
           << "    beq  x8, x16, found\n";
    }
    os << "nb8:\n"
          "    j   loop\n"
          "loop_end:\n"
          "    ret\n"
          "found:\n"
          "    li  x18, 1\n"
          "    ret\n";
    return os.str();
}

} // namespace

Workload
makeAstarWorkload(const AstarConfig& cfg)
{
    Workload w;
    w.name = "astar";
    w.mem = std::make_shared<SimMemory>();
    Rng rng(cfg.seed);

    const std::uint64_t cells =
        static_cast<std::uint64_t>(cfg.side) * cfg.side;

    Addr waymap = w.mem->alloc(cells * 8, 64);   // {fillnum, num} per cell
    Addr maparp = w.mem->alloc(cells * 4, 64);
    Addr bound1p = w.mem->alloc(cells * 4, 64);
    Addr bound2p = w.mem->alloc(cells * 4, 64);

    // Obstacles: random interior blockage plus a solid border ring so the
    // flood fill never walks outside the grid.
    for (unsigned y = 0; y < cfg.side; ++y) {
        for (unsigned x = 0; x < cfg.side; ++x) {
            std::uint64_t idx = static_cast<std::uint64_t>(y) * cfg.side + x;
            bool border = (x == 0 || y == 0 || x == cfg.side - 1 ||
                           y == cfg.side - 1);
            std::uint32_t blocked =
                (border || rng.chance(cfg.obstacle_prob)) ? 1 : 0;
            w.mem->write<std::uint32_t>(maparp + idx * 4, blocked);
        }
    }

    // Start cell at the grid center (must be free).
    std::uint64_t start =
        (static_cast<std::uint64_t>(cfg.side / 2)) * cfg.side + cfg.side / 2;
    w.mem->write<std::uint32_t>(maparp + start * 4, 0);
    w.mem->write<std::uint32_t>(bound1p, static_cast<std::uint32_t>(start));
    // Mark the start visited with the upcoming fillnum (fill() will ++ to 1).
    w.mem->write<std::uint32_t>(waymap + start * 8, 1);

    w.program = assemble(buildAstarAsm(cfg.side));
    w.entry = w.program.labelPc("fill");

    w.init_regs = {
        {3, 1},                      // bound1l = 1 (start cell)
        {11, 0},                     // fillnum (becomes 1 at roi_begin)
        {13, cfg.side},              // yoffset
        {14, waymap},
        {15, maparp},
        {16, static_cast<RegVal>(-1)}, // endindex: unreachable (full fill)
        {26, bound1p},
        {27, bound2p},
    };

    for (const char* key :
         {"roi_begin", "snoop_yoffset", "snoop_inbase", "snoop_waymap",
          "snoop_maparp", "snoop_induction"}) {
        w.pcs[key] = w.program.labelPc(key);
    }
    for (int n = 0; n < 8; ++n) {
        for (const char* prefix : {"br_way", "br_map", "st_out", "st_way"}) {
            std::string key = prefix + std::to_string(n);
            w.pcs[key] = w.program.labelPc(key);
        }
    }

    w.data = {{"waymap", waymap},
              {"maparp", maparp},
              {"bound1p", bound1p},
              {"bound2p", bound2p}};
    w.meta = {{"side", cfg.side},
              {"cells", cells},
              {"waymap_stride", 8},
              {"worklist_stride", 4}};
    return w;
}

} // namespace pfm
