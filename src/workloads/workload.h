/**
 * @file
 * A Workload bundles an assembled micro-ISA program, its initialized
 * simulated memory image, entry state, and named annotations (PCs of
 * snoopable instructions / FST branches, data-structure base addresses,
 * and scalar metadata). Component factories consume the annotations the
 * way a PFM configuration bitstream would.
 */

#ifndef PFM_WORKLOADS_WORKLOAD_H
#define PFM_WORKLOADS_WORKLOAD_H

#include <map>
#include <memory>
#include <string>

#include "isa/program.h"
#include "mem_sys/sim_memory.h"

namespace pfm {

struct Workload {
    std::string name;
    Program program;
    std::shared_ptr<SimMemory> mem;
    Addr entry = 0;

    /** Initial architectural register values (unified indices). */
    std::map<unsigned, RegVal> init_regs;

    /** Named PCs: snoop points and FST branches ("br_way0", ...). */
    std::map<std::string, Addr> pcs;

    /** Named data-structure base addresses. */
    std::map<std::string, Addr> data;

    /** Scalar metadata (grid width, node counts, strides, ...). */
    std::map<std::string, std::uint64_t> meta;

    Addr pc(const std::string& key) const;
    Addr dataAddr(const std::string& key) const;
    std::uint64_t metaVal(const std::string& key) const;
};

} // namespace pfm

#endif // PFM_WORKLOADS_WORKLOAD_H
