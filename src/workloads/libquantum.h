/**
 * @file
 * libquantum ROI (Figure 15): quantum_toffoli and quantum_sigma_x sweep a
 * huge quantum-register state vector; each has one delinquent streaming
 * load (marked B in the paper). Stride-regular but DRAM-resident.
 */

#ifndef PFM_WORKLOADS_LIBQUANTUM_H
#define PFM_WORKLOADS_LIBQUANTUM_H

#include "workloads/workload.h"

namespace pfm {

struct LibquantumConfig {
    std::uint64_t nodes = 1u << 21;  ///< state-vector entries (16 B each)
    unsigned rounds = 8;             ///< toffoli+sigma_x passes
    std::uint64_t seed = 11;
};

/**
 * Annotations:
 *  pcs:  roi_begin, del_load_tof, del_load_sig, count_tof (== del_load_tof)
 *  data: reg (state vector base)
 *  meta: nodes, stride (16)
 */
Workload makeLibquantumWorkload(const LibquantumConfig& cfg = {});

} // namespace pfm

#endif // PFM_WORKLOADS_LIBQUANTUM_H
