/**
 * @file
 * milc-style ROI: several parallel streaming loads with a large constant
 * stride (su3 matrix arrays). Each stream is libquantum-like; the custom
 * prefetcher reuses the adaptive-distance design (Section 4.3).
 */

#ifndef PFM_WORKLOADS_MILC_H
#define PFM_WORKLOADS_MILC_H

#include "workloads/workload.h"

namespace pfm {

struct MilcConfig {
    std::uint64_t sites = 1u << 18;  ///< lattice sites
    unsigned stride = 144;           ///< su3 matrix stride in bytes
    unsigned rounds = 6;
    std::uint64_t seed = 19;
};

/**
 * Annotations:
 *  pcs:  roi_begin, del_a, del_b
 *  data: a, b, c
 *  meta: sites, stride
 */
Workload makeMilcWorkload(const MilcConfig& cfg = {});

} // namespace pfm

#endif // PFM_WORKLOADS_MILC_H
