/**
 * @file
 * bwaves-style ROI: delinquent loads in the innermost of a deep loop nest,
 * with addresses that stride by a full plane (transposed traversal) so
 * every access touches a new page — beyond VLDP's per-page reach but
 * exactly followable by a custom FSM (Section 4.3).
 */

#ifndef PFM_WORKLOADS_BWAVES_H
#define PFM_WORKLOADS_BWAVES_H

#include "workloads/workload.h"

namespace pfm {

struct BwavesConfig {
    // Non-power-of-two grid (like the real benchmark's 65^3-class grids):
    // a power-of-two plane stride would alias every inner-loop access into
    // a single cache set.
    unsigned ni = 40;
    unsigned nj = 40;
    unsigned nk = 96;
    unsigned rounds = 2;
    std::uint64_t seed = 13;
};

/**
 * Annotations:
 *  pcs:  roi_begin, del_load_a, del_load_b
 *  data: a, b, c
 *  meta: ni, nj, nk, stride_k (plane stride in bytes), elem (8)
 */
Workload makeBwavesWorkload(const BwavesConfig& cfg = {});

} // namespace pfm

#endif // PFM_WORKLOADS_BWAVES_H
