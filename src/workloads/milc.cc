#include "workloads/milc.h"

#include <sstream>

#include "common/rng.h"
#include "isa/assembler.h"

namespace pfm {

namespace {

/** x2 i, x3 sites, x4 round, x5 rounds, x14/x15/x16 a/b/c bases. */
std::string
buildMilcAsm(unsigned stride)
{
    std::ostringstream os;
    os << "milc:\n"
          "roi_begin: mv x20, x14\n"
          "round_loop:\n"
          "    mv  x17, x14\n"
          "    mv  x18, x15\n"
          "    mv  x19, x16\n"
          "    li  x2, 0\n"
          "site_loop:\n"
          "del_a: fld f1, 0(x17)\n"
          "del_b: fld f2, 0(x18)\n"
          "    fld  f3, 8(x17)\n"
          "    fld  f4, 8(x18)\n"
          "    fmul f5, f1, f2\n"
          "    fmul f6, f3, f4\n"
          "    fsub f5, f5, f6\n"
          "    fsd  f5, 0(x19)\n"
       << "    addi x17, x17, " << stride << "\n"
       << "    addi x18, x18, " << stride << "\n"
       << "    addi x19, x19, " << stride << "\n"
       << "    addi x2, x2, 1\n"
          "    blt  x2, x3, site_loop\n"
          "    addi x4, x4, 1\n"
          "    blt  x4, x5, round_loop\n"
          "    halt\n";
    return os.str();
}

} // namespace

Workload
makeMilcWorkload(const MilcConfig& cfg)
{
    Workload w;
    w.name = "milc";
    w.mem = std::make_shared<SimMemory>();
    Rng rng(cfg.seed);

    std::uint64_t bytes = cfg.sites * cfg.stride;
    Addr a = w.mem->alloc(bytes, 64);
    Addr b = w.mem->alloc(bytes, 64);
    Addr c = w.mem->alloc(bytes, 64);
    for (std::uint64_t i = 0; i < cfg.sites; i += 97) {
        w.mem->write<double>(a + i * cfg.stride, rng.real());
        w.mem->write<double>(b + i * cfg.stride, rng.real());
    }

    w.program = assemble(buildMilcAsm(cfg.stride));
    w.entry = w.program.labelPc("milc");

    w.init_regs = {
        {2, 0}, {3, cfg.sites}, {4, 0}, {5, cfg.rounds},
        {14, a}, {15, b}, {16, c},
    };
    for (const char* key : {"roi_begin", "del_a", "del_b"})
        w.pcs[key] = w.program.labelPc(key);
    w.data = {{"a", a}, {"b", b}, {"c", c}};
    w.meta = {{"sites", cfg.sites}, {"stride", cfg.stride}};
    return w;
}

} // namespace pfm
