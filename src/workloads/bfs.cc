#include "workloads/bfs.h"

#include <string>

#include "common/log.h"
#include "isa/assembler.h"

namespace pfm {

namespace {

/**
 * Register allocation:
 *  x2  i              x3  frontier_len   x4  cur frontier   x5 next frontier
 *  x6  next_len       x7  u              x8  j (edge idx)   x9 edge end
 *  x10 v              x14 offsets        x15 neighbors      x19 parent
 *  x17/x22 addr tmps  x25 parent[v]      x28 swap tmp
 *  x20,x21,x23,x24 snoop destinations
 */
const char* kBfsAsm = R"(
bfs:
level_loop:
    beq x3, x0, bfs_done
roi_begin:       mv x20, x4
snoop_offsets:   mv x21, x14
snoop_neighbors: mv x22, x15
snoop_parent:    mv x23, x19
snoop_len:       mv x24, x3
    li  x2, 0
    li  x6, 0
td_loop:
    bge x2, x3, td_end
    slli x17, x2, 2
    add  x17, x17, x4
    lw   x7, 0(x17)
snoop_induction: addi x2, x2, 1
    slli x17, x7, 3
    add  x17, x17, x14
    ld   x8, 0(x17)
    ld   x9, 8(x17)
nb_loop:
br_nbloop: bge x8, x9, td_loop
    slli x17, x8, 2
    add  x17, x17, x15
    lw   x10, 0(x17)
    slli x17, x10, 2
    add  x17, x17, x19
    lw   x25, 0(x17)
br_visited: bge x25, x0, nb_skip
    sw   x7, 0(x17)
    slli x22, x6, 2
    add  x22, x22, x5
    sw   x10, 0(x22)
    addi x6, x6, 1
nb_skip:
    addi x8, x8, 1
    j    nb_loop
td_end:
    mv  x28, x4
    mv  x4, x5
    mv  x5, x28
    mv  x3, x6
    j   level_loop
bfs_done:
    halt
)";

} // namespace

Workload
makeBfsWorkload(const BfsConfig& cfg)
{
    CsrGraph g = cfg.input == BfsInput::kRoads
                     ? makeRoadGraph(cfg.road_side, cfg.seed)
                     : makeYoutubeGraph(cfg.youtube_nodes, cfg.youtube_deg,
                                        cfg.seed);

    Workload w;
    w.name = cfg.input == BfsInput::kRoads ? "bfs-roads" : "bfs-youtube";
    w.mem = std::make_shared<SimMemory>();

    Addr offsets = w.mem->alloc((g.num_nodes + 1) * 8, 64);
    Addr neighbors = w.mem->alloc(g.neighbors.size() * 4 + 8, 64);
    Addr parent = w.mem->alloc(g.num_nodes * 4, 64);
    Addr frontier_a = w.mem->alloc(g.num_nodes * 4, 64);
    Addr frontier_b = w.mem->alloc(g.num_nodes * 4, 64);

    // Bulk page-chunked writes: at the million-node tiers these arrays
    // are tens of MB, and per-word write<T>() calls made image setup
    // rival simulation time.
    w.mem->writeBytes(offsets, g.offsets.data(),
                      static_cast<unsigned>((g.num_nodes + 1) * 8));
    w.mem->writeBytes(neighbors, g.neighbors.data(),
                      static_cast<unsigned>(g.neighbors.size() * 4));
    const std::vector<std::uint32_t> unvisited(
        g.num_nodes, static_cast<std::uint32_t>(-1));
    w.mem->writeBytes(parent, unvisited.data(),
                      static_cast<unsigned>(g.num_nodes * 4));

    std::uint32_t src = cfg.source % g.num_nodes;
    w.mem->write<std::uint32_t>(parent + src * 4, src); // visited
    w.mem->write<std::uint32_t>(frontier_a, src);

    w.program = assemble(kBfsAsm);
    w.entry = w.program.labelPc("bfs");

    w.init_regs = {
        {3, 1},           // frontier length
        {4, frontier_a},
        {5, frontier_b},
        {14, offsets},
        {15, neighbors},
        {19, parent},
    };

    for (const char* key :
         {"roi_begin", "snoop_len", "snoop_offsets", "snoop_neighbors",
          "snoop_parent", "snoop_induction", "br_nbloop", "br_visited"}) {
        w.pcs[key] = w.program.labelPc(key);
    }
    w.data = {{"offsets", offsets},
              {"neighbors", neighbors},
              {"parent", parent},
              {"frontier_a", frontier_a},
              {"frontier_b", frontier_b}};
    w.meta = {{"num_nodes", g.num_nodes},
              {"num_edges", g.neighbors.size()}};
    return w;
}

} // namespace pfm
