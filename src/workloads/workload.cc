#include "workloads/workload.h"

#include "common/log.h"

namespace pfm {

Addr
Workload::pc(const std::string& key) const
{
    auto it = pcs.find(key);
    if (it == pcs.end())
        pfm_fatal("workload '%s': no PC annotation '%s'", name.c_str(),
                  key.c_str());
    return it->second;
}

Addr
Workload::dataAddr(const std::string& key) const
{
    auto it = data.find(key);
    if (it == data.end())
        pfm_fatal("workload '%s': no data annotation '%s'", name.c_str(),
                  key.c_str());
    return it->second;
}

std::uint64_t
Workload::metaVal(const std::string& key) const
{
    auto it = meta.find(key);
    if (it == meta.end())
        pfm_fatal("workload '%s': no metadata '%s'", name.c_str(),
                  key.c_str());
    return it->second;
}

} // namespace pfm
