/**
 * @file
 * The astar ROI (Figure 6 of the paper): wayobj::fill() repeatedly calls
 * wayobj::makebound2(), flood-filling a 2D grid through two alternating
 * worklists. Each popped cell tests its eight neighbors with the heavily
 * mispredicted waymap and maparp branches.
 *
 * The kernel is hand-compiled to the micro-ISA and runs on a real grid in
 * simulated memory, so branch outcomes and access patterns are genuine.
 */

#ifndef PFM_WORKLOADS_ASTAR_H
#define PFM_WORKLOADS_ASTAR_H

#include "workloads/workload.h"

namespace pfm {

struct AstarConfig {
    unsigned side = 512;          ///< grid is side x side cells
    double obstacle_prob = 0.35;  ///< maparp != 0 density
    std::uint64_t seed = 42;
};

/**
 * Annotations produced:
 *  pcs:  roi_begin (fillnum++), snoop_yoffset (per-call marker),
 *        snoop_inbase, snoop_waymap, snoop_maparp, snoop_induction,
 *        br_way0..7, br_map0..7
 *  data: waymap, maparp, bound1p, bound2p
 *  meta: side, cells, waymap_stride(8), worklist_stride(4)
 */
Workload makeAstarWorkload(const AstarConfig& cfg = {});

} // namespace pfm

#endif // PFM_WORKLOADS_ASTAR_H
