/**
 * @file
 * By-name workload factory used by the simulator driver, benches and
 * examples.
 */

#ifndef PFM_WORKLOADS_REGISTRY_H
#define PFM_WORKLOADS_REGISTRY_H

#include <string>
#include <vector>

#include "workloads/workload.h"

namespace pfm {

/** Names: astar, bfs-roads, bfs-youtube, libquantum, bwaves, lbm, milc,
 *  leslie. Fatal on unknown names. */
Workload makeWorkload(const std::string& name);

/** All registered workload names. */
std::vector<std::string> workloadNames();

} // namespace pfm

#endif // PFM_WORKLOADS_REGISTRY_H
