/**
 * @file
 * GAP-style top-down breadth-first search (the paper's bfs use-case,
 * Section 4.2). Each level walks the frontier; per node U it loads
 * offsets[U]/offsets[U+1], iterates U's neighbors (hard-to-predict
 * trip-count loop branch), loads each neighbor's visited-ness from the
 * parent/properties array (load-dependent load) and conditionally marks +
 * enqueues it (hard-to-predict visited branch).
 */

#ifndef PFM_WORKLOADS_BFS_H
#define PFM_WORKLOADS_BFS_H

#include "workloads/graph.h"
#include "workloads/workload.h"

namespace pfm {

enum class BfsInput { kRoads, kYoutube };

struct BfsConfig {
    BfsInput input = BfsInput::kRoads;
    unsigned road_side = 700;       ///< ~490k nodes (roadNet-CA-like scale)
    unsigned youtube_nodes = 300000;
    unsigned youtube_deg = 3;
    std::uint32_t source = 0;
    std::uint64_t seed = 7;
};

/**
 * Annotations:
 *  pcs:  roi_begin (per-level marker, value = frontier base),
 *        snoop_len, snoop_offsets, snoop_neighbors, snoop_parent,
 *        snoop_induction, br_nbloop, br_visited
 *  data: offsets, neighbors, parent, frontier_a, frontier_b
 *  meta: num_nodes, num_edges
 */
Workload makeBfsWorkload(const BfsConfig& cfg = {});

} // namespace pfm

#endif // PFM_WORKLOADS_BFS_H
