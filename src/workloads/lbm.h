/**
 * @file
 * lbm-style ROI: a cluster of delinquent loads per cell (stencil neighbors
 * in distant planes). The paper notes the baseline prefetcher reduces
 * latency unevenly so the bottleneck shifts among the cluster's loads; the
 * custom prefetcher pushes the whole set together (MLP awareness).
 */

#ifndef PFM_WORKLOADS_LBM_H
#define PFM_WORKLOADS_LBM_H

#include "workloads/workload.h"

namespace pfm {

struct LbmConfig {
    std::uint64_t cells = 1u << 20;  ///< sweep length
    unsigned plane = 16384;          ///< plane offset in elements
    unsigned row = 128;              ///< row offset in elements
    unsigned rounds = 4;
    std::uint64_t seed = 17;
};

/**
 * Annotations:
 *  pcs:  roi_begin, del0..del4
 *  data: src, dst
 *  meta: cells, plane_bytes, row_bytes
 */
Workload makeLbmWorkload(const LbmConfig& cfg = {});

} // namespace pfm

#endif // PFM_WORKLOADS_LBM_H
