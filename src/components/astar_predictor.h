/**
 * @file
 * Custom astar branch predictor (Section 4.1.2, Figure 7).
 *
 * Three decoupled engines ("threads" in fixed hardware):
 *  T0 — pre-allocates index_queue entries and loads the next `index` from
 *       the input worklist (tagged id = entry number; returns may be OOO).
 *  T1 — consumes indices in order, computes the eight `index1` neighbor
 *       cells, and issues the waymap/maparp load pairs.
 *  T2 — converts raw predicates (from the returned load values, sampled
 *       from committed memory) into final predictions, inferring
 *       not-yet-retired stores to waymap[index1].fillnum by searching the
 *       index1 CAM; [NT,NT] outcomes write their index1 into the CAM.
 *
 * Squash handling follows the paper: T0/T1 work is never redone; T2's
 * output stream is rolled back and recorded final predictions are
 * replayed (base-class machinery), with the log patched around the
 * mispredicted waymap branch (the corrected direction adds or removes the
 * dependent maparp prediction).
 *
 * The slipstream-style variant (inference and maparp prediction disabled)
 * models Slipstream 2.0's qualified astar configuration for Figure 2.
 */

#ifndef PFM_COMPONENTS_ASTAR_PREDICTOR_H
#define PFM_COMPONENTS_ASTAR_PREDICTOR_H

#include <vector>

#include "pfm/component.h"
#include "pfm/pfm_system.h"
#include "workloads/workload.h"

namespace pfm {

struct AstarPredictorOptions {
    unsigned index_queue_entries = 8; ///< speculative scope (Figure 10)
    bool inference = true;            ///< index1 CAM store inference
    bool predict_maparp = true;       ///< false: waymap-only (slipstream)
};

class AstarPredictor : public CustomComponent
{
  public:
    AstarPredictor(const Workload& w, const AstarPredictorOptions& opt);

    void reset() override;
    void dumpDebug(std::ostream& os) const override;

    /** Configure RST/FST and install the component into @p sys. */
    static void attach(PfmSystem& sys, const Workload& w,
                       const AstarPredictorOptions& opt = {});

  protected:
    void rfStep(Cycle now) override;
    void onObservation(const ObsPacket& p, Cycle now) override;
    void onLoadReturn(const LoadReturn& r, Cycle now) override;
    void patchLog(const SquashInfo& info) override;
    void onAttach() override;

  private:
    static constexpr unsigned kNeighbors = 8;

    struct Neighbor {
        std::int64_t index1 = 0;
        bool way_issued = false;
        bool map_issued = false;
        bool way_valid = false;
        bool map_valid = false;
        bool way_visited = false;  ///< committed waymap predicate
        bool map_blocked = false;  ///< committed maparp predicate
        bool inferred_store = false; ///< CAM entry: in-flight visit
        std::uint8_t emit_state = 0; ///< 0 none, 1 way emitted, 2 done
    };

    struct Iter {
        enum State : std::uint8_t { kFree, kWaitIndex, kHaveIndex };
        State state = kFree;
        std::uint64_t number = 0;   ///< iteration id (tag for OOO returns)
        std::int64_t index = 0;
        unsigned t1_next = 0;       ///< next neighbor T1 must issue
        Neighbor nb[kNeighbors];
    };

    // id encoding: gen(16) | kind(2) | nb(3) | iter(43)
    std::uint64_t makeId(unsigned kind, std::uint64_t iter,
                         unsigned nb) const;

    Iter& slot(std::uint64_t iter) { return ring_[iter % ring_.size()]; }

    bool camHit(std::int64_t index1, std::uint64_t iter, unsigned nb) const;
    void stepT0(Cycle now);
    void stepT1(Cycle now);
    void stepT2(Cycle now);

    // Prediction-log metadata: kind(1=way,2=map) | nb(3) | iter(28 bits).
    static std::uint32_t predMeta(unsigned kind, std::uint64_t iter,
                                  unsigned nb);

    AstarPredictorOptions opt_;

    // Bitstream configuration (PCs) from the workload annotations.
    Addr pc_roi_begin_, pc_yoffset_, pc_inbase_, pc_waymap_, pc_maparp_,
        pc_induction_;
    std::vector<Addr> way_pcs_;
    std::vector<Addr> map_pcs_;

    // Persistent configuration registers (survive per-call resets).
    RegVal fillnum_ = 0;
    Addr waymap_base_ = kBadAddr;
    Addr maparp_base_ = kBadAddr;
    std::int64_t yoffset_ = 0;
    std::int64_t offsets_[kNeighbors] = {};

    // Per-call state.
    Addr in_base_ = kBadAddr;
    bool in_base_valid_ = false;
    std::vector<Iter> ring_;
    std::uint64_t alloc_iter_ = 0;   ///< T (allocation tail)
    std::uint64_t t1_iter_ = 0;
    std::uint64_t t2_iter_ = 0;
    unsigned t2_nb_ = 0;
    std::uint64_t commit_iter_ = 0;  ///< H (retired iterations)
    std::uint64_t next_i_ = 0;       ///< next input worklist element
    std::uint16_t gen_ = 0;          ///< id generation (stale-return filter)

    // Bound once in onAttach(); patchLog() runs on every FST squash.
    Counter* ctr_patch_insertions_ = nullptr;
    Counter* ctr_patch_deletions_ = nullptr;
};

} // namespace pfm

#endif // PFM_COMPONENTS_ASTAR_PREDICTOR_H
