/**
 * @file
 * astar-alt: the alternative astar custom predictor of Section 5 /
 * Table 4, inspired by the EXACT branch predictor (Al-Otoom et al., CF'10)
 * and the authors' earlier Post-Silicon Microarchitecture letter.
 *
 * Instead of issuing loads to the program's data structures, it *mimics*
 * them: two large prediction tables shadow the waymap and maparp arrays
 * (updated actively from the retire stream and speculatively at
 * prediction time), and two internal worklists shadow bound1p/bound2p
 * (populated by observing the program's committed worklist stores and
 * swapped at each call to wayobj::makebound2()).
 *
 * Strengths/weaknesses match the paper's discussion: no Load Agent
 * traffic and BRAM-friendly structures, but capacity-limited (table
 * aliasing, 512-entry worklists) and no prefetching side-effect — the
 * paper reports 125% IPC improvement vs 154% for the load-based design.
 */

#ifndef PFM_COMPONENTS_ASTAR_ALT_PREDICTOR_H
#define PFM_COMPONENTS_ASTAR_ALT_PREDICTOR_H

#include <unordered_set>
#include <vector>

#include "pfm/component.h"
#include "pfm/pfm_system.h"
#include "workloads/workload.h"

namespace pfm {

struct AstarAltOptions {
    /**
     * Paper FPGA design: 32KB per table, sized to its SPEC input. Our
     * synthetic grid has 512x512 cells, so the functional default is one
     * tag per cell (the Table 4 cost model keeps the paper's 32KB). The
     * dataset-sensitivity this exposes is the robustness weakness the
     * paper gives for preferring the load-based design.
     */
    unsigned table_bytes = 256 * 1024;
    /**
     * The paper's FPGA design uses 512-entry worklists, sized to its SPEC
     * input; our synthetic grid's flood-fill frontier peaks around 4k, so
     * the default here is scaled accordingly (the Table 4 cost model keeps
     * the paper's 512).
     */
    unsigned worklist_entries = 6144;
};

class AstarAltPredictor : public CustomComponent
{
  public:
    AstarAltPredictor(const Workload& w, const AstarAltOptions& opt);

    void reset() override;
    void dumpDebug(std::ostream& os) const override;

    static void attach(PfmSystem& sys, const Workload& w,
                       const AstarAltOptions& opt = {});

  protected:
    void rfStep(Cycle now) override;
    void onObservation(const ObsPacket& p, Cycle now) override;
    void patchLog(const SquashInfo& info) override;
    void onAttach() override;

  private:
    static constexpr unsigned kNeighbors = 8;

    size_t wayIndex(std::int64_t index1) const
    {
        return static_cast<size_t>(index1) & (way_table_.size() - 1);
    }
    size_t mapIndex(std::int64_t index1) const
    {
        return static_cast<size_t>(index1) & (map_state_.size() - 1);
    }

    AstarAltOptions opt_;

    // Bitstream configuration.
    Addr pc_roi_begin_, pc_yoffset_, pc_inbase_, pc_waymap_, pc_maparp_,
        pc_induction_;
    std::unordered_set<Addr> out_store_pcs_;
    std::unordered_set<Addr> way_store_pcs_;
    std::unordered_set<Addr> way_branch_pcs_;
    std::unordered_set<Addr> map_branch_pcs_;

    // Persistent configuration registers.
    RegVal fillnum_ = 0;
    Addr waymap_base_ = kBadAddr;
    std::int64_t yoffset_ = 0;
    std::int64_t offsets_[kNeighbors] = {};

    // The mimicking structures. way_table_ holds an 8-bit fillnum tag per
    // entry ("visited during this fill?"); map_state_ holds a 2-bit
    // learned maparp state (0 unknown, 1 free, 2 blocked).
    std::vector<std::uint8_t> way_table_;
    std::vector<std::uint8_t> map_state_;

    // Internal worklists: collecting (next call's input, filled from the
    // observed committed bound2p stores) and draining (this call's input).
    std::vector<std::int32_t> collecting_;
    std::vector<std::int32_t> draining_;
    size_t drain_pos_ = 0;
    unsigned nb_pos_ = 0;     ///< neighbor within the current index
    std::uint64_t dropped_ = 0;

    // Emission sub-state: 0 = waymap pred next, 1 = maparp pred next.
    std::uint8_t phase_ = 0;

    // Bound once in onAttach(); rfStep()/patchLog() are per-prediction.
    Counter* ctr_default_predictions_ = nullptr;
    Counter* ctr_map_learned_ = nullptr;
    Counter* ctr_patch_insertions_ = nullptr;
    Counter* ctr_patch_deletions_ = nullptr;
};

} // namespace pfm

#endif // PFM_COMPONENTS_ASTAR_ALT_PREDICTOR_H
