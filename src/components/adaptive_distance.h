/**
 * @file
 * Sampling-based prefetch-distance feedback (Section 4.3): each epoch the
 * engine counts retired instances of the delinquent load (a proxy for
 * IPC); the distance keeps growing while the proxy improves, settles when
 * it is flat, and backs off when it degrades.
 */

#ifndef PFM_COMPONENTS_ADAPTIVE_DISTANCE_H
#define PFM_COMPONENTS_ADAPTIVE_DISTANCE_H

#include <cstdint>

#include "common/types.h"
#include "sim/checkpoint.h"

namespace pfm {

struct AdaptiveDistanceParams {
    // The distance is measured from the *retired* delinquent-load frontier,
    // so it must clear the core's in-flight window (~28 loads for a
    // 224-entry ROB) before prefetches lead demand at all.
    unsigned initial = 128;
    unsigned step = 32;
    unsigned min = 16;
    unsigned max = 512;
    Cycle epoch_cycles = 16384;
    double improve_threshold = 0.02; ///< relative change = "changed"
};

class AdaptiveDistance
{
  public:
    using Params = AdaptiveDistanceParams;

    explicit AdaptiveDistance(const Params& p = Params())
        : p_(p), distance_(p.initial)
    {}

    unsigned distance() const { return distance_; }

    /**
     * Fast-forward horizon: the next cycle at which tick() can change
     * state — 0 (an immediate event) while the epoch is still unarmed,
     * else the end of the running epoch.
     */
    Cycle nextEpochBoundary() const
    {
        if (epoch_start_ == kNoCycle)
            return 0;
        return epoch_start_ + p_.epoch_cycles;
    }

    /** Feed the running feedback counter; call once per RF cycle. */
    void
    tick(Cycle now, std::uint64_t events)
    {
        if (epoch_start_ == kNoCycle) {
            epoch_start_ = now;
            epoch_events_base_ = events;
            return;
        }
        if (now - epoch_start_ < p_.epoch_cycles)
            return;

        double rate = static_cast<double>(events - epoch_events_base_);
        if (last_rate_ >= 0.0 && !settled_) {
            double delta = rate - last_rate_;
            double rel = last_rate_ > 0 ? delta / last_rate_ : 0.0;
            if (rel > p_.improve_threshold) {
                if (distance_ + p_.step <= p_.max)
                    distance_ += p_.step;
                else
                    settled_ = true;
            } else if (rel < -p_.improve_threshold) {
                if (distance_ >= p_.min + p_.step)
                    distance_ -= p_.step;
                settled_ = true;
            } else {
                settled_ = true;
            }
        } else if (last_rate_ < 0.0) {
            // First full epoch: begin probing upward.
            if (distance_ + p_.step <= p_.max)
                distance_ += p_.step;
        }
        last_rate_ = rate;
        epoch_start_ = now;
        epoch_events_base_ = events;
    }

    void
    reset()
    {
        distance_ = p_.initial;
        last_rate_ = -1.0;
        settled_ = false;
        epoch_start_ = kNoCycle;
        epoch_events_base_ = 0;
    }

    void
    saveState(CkptWriter& w) const
    {
        w.put(distance_);
        w.put(last_rate_);
        w.put(settled_);
        w.put(epoch_start_);
        w.put(epoch_events_base_);
    }

    void
    loadState(CkptReader& r)
    {
        r.get(distance_);
        r.get(last_rate_);
        r.get(settled_);
        r.get(epoch_start_);
        r.get(epoch_events_base_);
    }

  private:
    Params p_;
    unsigned distance_;
    double last_rate_ = -1.0;
    bool settled_ = false;
    Cycle epoch_start_ = kNoCycle;
    std::uint64_t epoch_events_base_ = 0;
};

} // namespace pfm

#endif // PFM_COMPONENTS_ADAPTIVE_DISTANCE_H
