#include "components/bwaves_prefetcher.h"

#include "components/prefetch_engine.h"

namespace pfm {

void
attachBwavesPrefetcher(PfmSystem& sys, const Workload& w)
{
    std::uint64_t ni = w.metaVal("ni");
    std::uint64_t nj = w.metaVal("nj");
    std::uint64_t nk = w.metaVal("nk");
    auto stride_k = static_cast<std::int64_t>(w.metaVal("stride_k"));

    std::vector<PrefetchStream> streams;
    for (const char* which : {"a", "b"}) {
        PrefetchStream s;
        s.name = which;
        s.base = w.dataAddr(which);
        auto elem = static_cast<std::int64_t>(w.metaVal("elem"));
        // Loop nest: rounds (stride 0), j (NI*elem), i (elem), k (plane).
        s.levels = {{1u << 20, 0},
                    {nj, static_cast<std::int64_t>(ni) * elem},
                    {ni, elem},
                    {nk, stride_k}};
        s.unit_elems = 1;        // every k step lands on a new page
        s.events_per_unit = 1.0; // one retired load B per k iteration
        s.feedback_pc =
            w.pc(std::string("del_load_") + which);
        streams.push_back(s);
    }
    FsmPrefetcher::attach(sys, w, std::move(streams));
}

} // namespace pfm
