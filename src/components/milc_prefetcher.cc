#include "components/milc_prefetcher.h"

#include "components/prefetch_engine.h"

namespace pfm {

void
attachMilcPrefetcher(PfmSystem& sys, const Workload& w)
{
    std::uint64_t sites = w.metaVal("sites");
    auto stride = static_cast<std::int64_t>(w.metaVal("stride"));

    std::vector<PrefetchStream> streams;
    struct Cfg {
        const char* array;
        const char* feedback;
    };
    // c is written (write-allocate misses); paced by the a-load counter.
    for (Cfg cfg : {Cfg{"a", "del_a"}, Cfg{"b", "del_b"}, Cfg{"c", "del_a"}}) {
        PrefetchStream s;
        s.name = cfg.array;
        s.base = w.dataAddr(cfg.array);
        s.levels = {{1u << 20, 0}, {sites, stride}};
        s.unit_elems = 1;
        s.events_per_unit = 1.0;
        // Prefetch the line holding each access start: the resulting line
        // deltas (2,2,2,3 at the 144-byte stride) are exactly the demand
        // stream and are ambiguous for VLDP's delta histories.
        s.set_offsets = {0};
        s.feedback_pc = w.pc(cfg.feedback);
        streams.push_back(s);
    }
    FsmPrefetcher::attach(sys, w, std::move(streams));
}

} // namespace pfm
