/**
 * @file
 * libquantum custom prefetcher (Figure 16): one simple streaming FSM per
 * gate sweep (toffoli, sigma_x) with adaptive prefetch distance.
 */

#ifndef PFM_COMPONENTS_LIBQUANTUM_PREFETCHER_H
#define PFM_COMPONENTS_LIBQUANTUM_PREFETCHER_H

#include "pfm/pfm_system.h"
#include "workloads/workload.h"

namespace pfm {

void attachLibquantumPrefetcher(PfmSystem& sys, const Workload& w);

} // namespace pfm

#endif // PFM_COMPONENTS_LIBQUANTUM_PREFETCHER_H
