#include "components/slipstream.h"

#include "components/astar_predictor.h"
#include "components/bfs_component.h"

namespace pfm {

void
attachAstarSlipstream(PfmSystem& sys, const Workload& w)
{
    AstarPredictorOptions opt;
    opt.inference = false;      // omitted loop-carried memory dependence
    opt.predict_maparp = false; // branch 2 is skipped over
    AstarPredictor::attach(sys, w, opt);
}

void
attachBfsSlipstream(PfmSystem& sys, const Workload& w)
{
    BfsComponentOptions opt;
    opt.inference = false;
    opt.predict_loop = false;   // no trip-count streaming
    opt.predict_visited = true;
    BfsComponent::attach(sys, w, opt);
}

} // namespace pfm
