/**
 * @file
 * lbm custom prefetcher: pushes the whole delinquent-load cluster per
 * cell *as a set* (or skips it when IntQ-IS is full) — the MLP awareness
 * Section 4.3 identifies as necessary for lbm.
 */

#ifndef PFM_COMPONENTS_LBM_PREFETCHER_H
#define PFM_COMPONENTS_LBM_PREFETCHER_H

#include "pfm/pfm_system.h"
#include "workloads/workload.h"

namespace pfm {

void attachLbmPrefetcher(PfmSystem& sys, const Workload& w);

} // namespace pfm

#endif // PFM_COMPONENTS_LBM_PREFETCHER_H
