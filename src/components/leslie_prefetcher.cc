#include "components/leslie_prefetcher.h"

#include "components/prefetch_engine.h"

namespace pfm {

void
attachLesliePrefetcher(PfmSystem& sys, const Workload& w)
{
    std::uint64_t nx = w.metaVal("nx");
    std::uint64_t ny = w.metaVal("ny");
    std::uint64_t nz = w.metaVal("nz");
    std::uint64_t n3 = nx * ny * nz;
    auto row = static_cast<std::int64_t>(nx * 8);

    std::vector<PrefetchStream> streams;

    PrefetchStream r1;
    r1.name = "roi1-stream";
    r1.base = w.dataAddr("u");
    r1.levels = {{1u << 20, 0}, {n3, 8}};
    r1.unit_elems = 8;
    r1.events_per_unit = 8.0;
    r1.feedback_pc = w.pc("del_r1");
    streams.push_back(r1);

    PrefetchStream r2;
    r2.name = "roi2-transposed";
    r2.base = w.dataAddr("u");
    // for j in [0,NX): for i in [0,NY): u[i*NX + j]
    r2.levels = {{1u << 20, 0}, {nx, 8}, {ny, row}};
    r2.unit_elems = 1;
    r2.events_per_unit = 1.0;
    r2.feedback_pc = w.pc("del_r2");
    streams.push_back(r2);

    PrefetchStream r3;
    r3.name = "roi3-stencil";
    r3.base = w.dataAddr("v");
    r3.levels = {{1u << 20, 0}, {n3 - 2 * nx, 8}};
    r3.unit_elems = 8;
    r3.events_per_unit = 8.0;
    r3.set_offsets = {0, row};
    r3.feedback_pc = w.pc("del_r3");
    streams.push_back(r3);

    FsmPrefetcher::attach(sys, w, std::move(streams));
}

} // namespace pfm
