#include "components/prefetch_engine.h"

#include "sim/checkpoint.h"

#include <cstdio>
#include <cstdlib>

#include "common/log.h"

namespace pfm {

FsmPrefetcher::FsmPrefetcher(std::string name,
                             std::vector<PrefetchStream> streams,
                             const AdaptiveDistance::Params& adapt)
    : CustomComponent(std::move(name)),
      streams_(std::move(streams)),
      trace_enabled_(std::getenv("PFM_PF_TRACE") != nullptr)
{
    state_.resize(streams_.size());
    for (size_t i = 0; i < streams_.size(); ++i) {
        state_[i].idx.assign(streams_[i].levels.size(), 0);
        state_[i].adapt = AdaptiveDistance(adapt);
    }
}

void
FsmPrefetcher::attach(PfmSystem& sys, const Workload& w,
                      std::vector<PrefetchStream> streams,
                      const AdaptiveDistance::Params& adapt)
{
    RetireSnoopTable& rst = sys.retireAgent().rst();

    RstEntry begin;
    begin.type = ObsType::kRoiBegin;
    begin.roi_begin = true;
    rst.add(w.pc("roi_begin"), begin);

    for (const PrefetchStream& s : streams) {
        if (s.feedback_pc != kBadAddr) {
            RstEntry cnt;
            cnt.count_only = true;
            rst.add(s.feedback_pc, cnt);
        }
    }

    sys.setComponent(std::make_unique<FsmPrefetcher>(
        w.name + "-prefetcher", std::move(streams), adapt));
}

void
FsmPrefetcher::onAttach()
{
    ctr_sets_skipped_ = &stats().counter("prefetch_sets_skipped");
    ctr_prefetches_issued_ = &stats().counter("prefetches_issued");
    acct_.bindCounters(stats());
}

void
FsmPrefetcher::reset()
{
    CustomComponent::reset();
    for (size_t i = 0; i < state_.size(); ++i) {
        state_[i].idx.assign(streams_[i].levels.size(), 0);
        state_[i].units_issued = 0;
        state_[i].done = false;
        state_[i].adapt.reset();
        state_[i].pending.clear();
    }
    acct_.reset();
}

Cycle
FsmPrefetcher::nextEventCycle(Cycle now) const
{
    if (replaying())
        return now; // squash replay drains at every RF edge
    Cycle next = kNoCycle;
    for (size_t i = 0; i < streams_.size(); ++i) {
        const PrefetchStream& s = streams_[i];
        const StreamState& st = state_[i];
        if (st.done)
            continue;
        std::uint64_t events = retireAgent().countFor(s.feedback_pc);
        std::uint64_t demand_units = static_cast<std::uint64_t>(
            static_cast<double>(events) / s.events_per_unit);
        if (st.units_issued < demand_units + st.adapt.distance() ||
            !st.pending.empty())
            return now; // issue work outstanding (or blocked on IntQ-IS)
        Cycle boundary = st.adapt.nextEpochBoundary();
        if (boundary <= now)
            return now;
        if (boundary < next)
            next = boundary;
    }
    return next;
}

void
FsmPrefetcher::onObservation(const ObsPacket& p, Cycle now)
{
    (void)p;
    (void)now; // All configuration is in the shipped stream specs.
}

Addr
FsmPrefetcher::currentAddr(const PrefetchStream& s,
                           const StreamState& st) const
{
    std::int64_t off = 0;
    for (size_t l = 0; l < s.levels.size(); ++l) {
        off += static_cast<std::int64_t>(st.idx[l]) * s.levels[l].stride_bytes;
    }
    return s.base + static_cast<Addr>(off);
}

bool
FsmPrefetcher::advance(const PrefetchStream& s, StreamState& st)
{
    // Advance the innermost counter by unit_elems, carrying outward.
    pfm_assert(!s.levels.empty(), "prefetch stream with no levels");
    size_t inner = s.levels.size() - 1;
    st.idx[inner] += s.unit_elems;
    for (size_t l = inner; l > 0; --l) {
        if (st.idx[l] < s.levels[l].count)
            return true;
        st.idx[l] = 0;
        ++st.idx[l - 1];
    }
    if (st.idx[0] >= s.levels[0].count) {
        if (!s.wrap) {
            st.done = true;
            return false;
        }
        st.idx[0] = 0;
    }
    return true;
}

void
FsmPrefetcher::rfStep(Cycle now)
{
    for (size_t i = 0; i < streams_.size(); ++i) {
        const PrefetchStream& s = streams_[i];
        StreamState& st = state_[i];
        if (st.done)
            continue;

        std::uint64_t events = retireAgent().countFor(s.feedback_pc);
        st.adapt.tick(now, events);

        std::uint64_t demand_units = static_cast<std::uint64_t>(
            static_cast<double>(events) / s.events_per_unit);
        std::uint64_t target = demand_units + st.adapt.distance();

        if (std::getenv("PFM_PF_TRACE") && (now & 0xFFFF) < 4) {
            std::fprintf(stderr,
                         "lead %s now=%llu events=%llu issued=%llu "
                         "dist=%u intq_free=%u\n",
                         s.name.c_str(), (unsigned long long)now,
                         (unsigned long long)events,
                         (unsigned long long)st.units_issued,
                         st.adapt.distance(),
                         static_cast<unsigned>(
                             loadAgent().requestPort().freeSlots()));
        }

        while (st.units_issued < target) {
            if (st.pending.empty()) {
                Addr a = currentAddr(s, st);
                for (std::int64_t off : s.set_offsets)
                    st.pending.push_back(a + static_cast<Addr>(off));
            }
            if (s.skip_if_full &&
                loadAgent().requestPort().freeSlots() < st.pending.size()) {
                // lbm-style MLP awareness: never push a partial cluster.
                st.pending.clear();
                ++*ctr_sets_skipped_;
                ++st.units_issued;
                if (!advance(s, st))
                    break;
                continue;
            }
            bool blocked = false;
            while (!st.pending.empty()) {
                if (!issueLoad(0, st.pending.back(), 8, now,
                               /*prefetch_only=*/true)) {
                    blocked = true;
                    break;
                }
                if (trace_enabled_ && trace_count_++ < 20) {
                    std::fprintf(stderr, "pf %s unit=%llu addr=%llx\n",
                                 s.name.c_str(),
                                 (unsigned long long)st.units_issued,
                                 (unsigned long long)st.pending.back());
                }
                acct_.onIssue(lineAlign(st.pending.back()));
                st.pending.pop_back();
                ++*ctr_prefetches_issued_;
            }
            if (blocked)
                break;
            ++st.units_issued;
            if (!advance(s, st))
                break;
        }
    }
}


void
FsmPrefetcher::saveState(CkptWriter& w) const
{
    CustomComponent::saveState(w);
    // streams_ is immutable configuration; per-stream runtime state only.
    w.put<std::uint64_t>(state_.size());
    for (const StreamState& st : state_) {
        w.putVec(st.idx);
        w.put(st.units_issued);
        w.put(st.done);
        st.adapt.saveState(w);
        w.putVec(st.pending);
    }
    acct_.saveState(w);
}

void
FsmPrefetcher::loadState(CkptReader& r)
{
    CustomComponent::loadState(r);
    std::uint64_t n = r.get<std::uint64_t>();
    pfm_assert(n == state_.size(),
               "stream count mismatch in checkpoint (%llu vs %zu)",
               (unsigned long long)n, state_.size());
    for (StreamState& st : state_) {
        r.getVec(st.idx);
        r.get(st.units_issued);
        r.get(st.done);
        st.adapt.loadState(r);
        r.getVec(st.pending);
    }
    acct_.loadState(r);
}

} // namespace pfm
