/**
 * @file
 * PMP-style pattern-merging spatial prefetcher (cf. *Pattern Merging
 * Prefetcher*, MICRO '22), built on the CustomComponent/TimedPort API
 * plus the opt-in cache observation events (cache_events.h).
 *
 * Workload-agnostic, unlike the five hand-tuned FSM prefetchers: it
 * learns 4KB-region spatial bit patterns from the demand access stream.
 *
 *  - Accumulation table: one FIFO entry per active region records the
 *    trigger offset (first access) and a 64-bit footprint of the lines
 *    touched while the region stayed resident.
 *  - Pattern history table, one set per *trigger offset* ("per-page-offset
 *    tables"): on accumulation eviction the footprint is anchored by
 *    rotating it so the trigger sits at bit 0, then OR-merged into the
 *    most similar stored pattern when the Jaccard similarity
 *    |a&b| / |a|b| clears a threshold, else it replaces the
 *    least-merged way. Merging is what lets one entry cover many pages
 *    with slightly different footprints.
 *  - Prediction: the first access to a new region looks up its trigger
 *    offset's set, takes the most-merged pattern, de-anchors it around
 *    the trigger and emits prefetch candidates nearest-first, throttled
 *    by a degree cap and a maximum line distance.
 *
 * PmpTables is the pure lookup structure (no agents, no clocking) so the
 * reference-model differential suite (tests/reference_pmp.*) can lockstep
 * it; PmpPrefetcher wraps it into a component: cache events train and
 * trigger, rfStep() drains the candidate queue through the Load Agent as
 * prefetch_only loads (width- and IntQ-IS-budgeted).
 */

#ifndef PFM_COMPONENTS_PMP_PREFETCHER_H
#define PFM_COMPONENTS_PMP_PREFETCHER_H

#include <cstdint>
#include <deque>
#include <vector>

#include "pfm/component.h"
#include "pfm/pfm_system.h"
#include "pfm/prefetch_stats.h"
#include "workloads/workload.h"

namespace pfm {

struct PmpParams {
    unsigned acc_entries = 32;          ///< accumulation table capacity
    unsigned pht_ways = 8;              ///< ways per trigger-offset set
    unsigned merge_threshold_pct = 60;  ///< Jaccard % at or above: OR-merge
    unsigned degree = 8;                ///< max candidates per trigger
    unsigned max_distance = 16;         ///< max rotation distance in lines
};

class PmpTables
{
  public:
    /** 64-line (4KB) regions: one footprint bit per 64B line. */
    static constexpr unsigned kRegionLines = 64;

    explicit PmpTables(const PmpParams& params = {});

    /**
     * Observe one demand access; appends prefetch candidate addresses
     * (line-aligned, same region) to @p out when the access triggers a
     * new region. Ordering is deterministic: nearest rotation distance
     * first, forward before backward, capped at degree.
     */
    void onAccess(Addr addr, std::vector<Addr>& out);

    void reset();

    /** Deterministic image mirrored by refmodel::RefPmp (byte-for-byte). */
    void saveState(CkptWriter& w) const;
    void loadState(CkptReader& r);

    const PmpParams& params() const { return params_; }

    // ---- merge-rule primitives (property-tested in tests/test_pmp.cc) --

    /** The merge operation: footprint union. */
    static std::uint64_t mergePatterns(std::uint64_t a, std::uint64_t b)
    {
        return a | b;
    }

    /** Jaccard-style gate: |a&b| * 100 >= threshold * |a|b|. */
    static bool similarEnough(std::uint64_t a, std::uint64_t b,
                              unsigned threshold_pct);

    /** Anchor a footprint: rotate right so the trigger line is bit 0. */
    static std::uint64_t anchorPattern(std::uint64_t pattern,
                                       unsigned trigger);

    // ---- introspection (occupancy property tests) ----------------------

    std::size_t accOccupancy() const { return acc_.size(); }
    unsigned phtOccupancy(unsigned set) const;

  private:
    struct AccEntry {
        std::uint64_t region = 0;
        std::uint8_t trigger = 0;
        std::uint64_t pattern = 0;
    };

    /** merges == 0 means invalid; saturates at 255. */
    struct PhtWay {
        std::uint64_t pattern = 0;
        std::uint8_t merges = 0;
    };

    void commit(const AccEntry& e);
    void predict(std::uint64_t region, unsigned trigger,
                 std::vector<Addr>& out) const;

    PmpParams params_;
    std::deque<AccEntry> acc_;  ///< FIFO, front = oldest
    std::vector<PhtWay> pht_;   ///< kRegionLines sets x pht_ways, row-major
};

class PmpPrefetcher : public CustomComponent
{
  public:
    explicit PmpPrefetcher(const PmpParams& params = {});

    /** Register the roi_begin RST entry and install the component. Works
     *  for any workload: PMP needs no per-workload configuration. */
    static void attach(PfmSystem& sys, const Workload& w,
                       const PmpParams& params = {});

    void reset() override;
    Cycle nextEventCycle(Cycle now) const override;
    void dumpDebug(std::ostream& os) const override;

    bool wantsCacheEvents() const override { return true; }
    void onCacheEvent(const CacheEvent& e) override;

    const PrefetchAccounting* prefetchAccounting() const override
    {
        return &acct_;
    }

    bool supportsCheckpoint() const override { return true; }
    void saveState(CkptWriter& w) const override;
    void loadState(CkptReader& r) override;

  protected:
    void rfStep(Cycle now) override;
    void onObservation(const ObsPacket& p, Cycle now) override
    {
        (void)p; (void)now; // roi_begin reset is handled by PfmSystem
    }
    void onAttach() override;

  private:
    /** Candidate queue bound: cache events can outpace the RF issue rate
     *  (clk_div, width, IntQ-IS); overflow drops the newest candidates. */
    static constexpr std::size_t kPendingCap = 64;

    PmpTables tables_;
    std::deque<Addr> pending_;   ///< candidates awaiting issueLoad()
    std::vector<Addr> scratch_;  ///< per-event candidate buffer
    PrefetchAccounting acct_;

    Counter* ctr_candidates_ = nullptr;
    Counter* ctr_dropped_ = nullptr;
};

} // namespace pfm

#endif // PFM_COMPONENTS_PMP_PREFETCHER_H
