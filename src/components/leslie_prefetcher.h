/**
 * @file
 * leslie custom prefetcher: one FSM per ROI (streaming copy, transposed
 * read, stencil), each paced by its own delinquent load (Section 4.3).
 */

#ifndef PFM_COMPONENTS_LESLIE_PREFETCHER_H
#define PFM_COMPONENTS_LESLIE_PREFETCHER_H

#include "pfm/pfm_system.h"
#include "workloads/workload.h"

namespace pfm {

void attachLesliePrefetcher(PfmSystem& sys, const Workload& w);

} // namespace pfm

#endif // PFM_COMPONENTS_LESLIE_PREFETCHER_H
