#include "components/pmp_prefetcher.h"

#include "common/log.h"
#include "sim/checkpoint.h"

#include <bit>
#include <ostream>

namespace pfm {

// ---------------------------------------------------------------------------
// PmpTables
// ---------------------------------------------------------------------------

PmpTables::PmpTables(const PmpParams& params) : params_(params)
{
    pfm_assert(params_.acc_entries > 0, "PMP accumulation table is empty");
    pfm_assert(params_.pht_ways > 0, "PMP PHT has no ways");
    pfm_assert(params_.max_distance < kRegionLines,
               "PMP max_distance must stay inside one region");
    pht_.resize(static_cast<std::size_t>(kRegionLines) * params_.pht_ways);
}

bool
PmpTables::similarEnough(std::uint64_t a, std::uint64_t b,
                         unsigned threshold_pct)
{
    const unsigned inter = static_cast<unsigned>(std::popcount(a & b));
    const unsigned uni = static_cast<unsigned>(std::popcount(a | b));
    // Empty-vs-empty is fully similar; committed patterns are never empty.
    return static_cast<std::uint64_t>(inter) * 100 >=
           static_cast<std::uint64_t>(threshold_pct) * uni;
}

std::uint64_t
PmpTables::anchorPattern(std::uint64_t pattern, unsigned trigger)
{
    const unsigned s = trigger % kRegionLines;
    if (s == 0)
        return pattern;
    return (pattern >> s) | (pattern << (kRegionLines - s));
}

void
PmpTables::onAccess(Addr addr, std::vector<Addr>& out)
{
    const std::uint64_t lineno = addr / kLineBytes;
    const std::uint64_t region = lineno / kRegionLines;
    const unsigned offset = static_cast<unsigned>(lineno % kRegionLines);

    for (AccEntry& e : acc_) {
        if (e.region == region) {
            e.pattern |= std::uint64_t{1} << offset;
            return; // training only; predictions fire on region triggers
        }
    }

    // Region trigger: retire the oldest accumulation into the PHT, start
    // accumulating the new region, and predict from what the PHT already
    // learned for this trigger offset.
    if (acc_.size() >= params_.acc_entries) {
        commit(acc_.front());
        acc_.pop_front();
    }
    AccEntry e;
    e.region = region;
    e.trigger = static_cast<std::uint8_t>(offset);
    e.pattern = std::uint64_t{1} << offset;
    acc_.push_back(e);

    predict(region, offset, out);
}

void
PmpTables::commit(const AccEntry& e)
{
    // A footprint with only the trigger bit carries no spatial signal.
    if (std::popcount(e.pattern) < 2)
        return;

    const std::uint64_t pat = anchorPattern(e.pattern, e.trigger);
    PhtWay* set = &pht_[static_cast<std::size_t>(e.trigger) * params_.pht_ways];

    // Find the most similar valid way (cross-multiplied Jaccard compare so
    // everything stays in integers; first way wins ties).
    unsigned best = params_.pht_ways;
    std::uint64_t best_num = 0;
    std::uint64_t best_den = 1;
    for (unsigned w = 0; w < params_.pht_ways; ++w) {
        if (set[w].merges == 0)
            continue;
        const std::uint64_t num =
            static_cast<std::uint64_t>(std::popcount(pat & set[w].pattern));
        const std::uint64_t den =
            static_cast<std::uint64_t>(std::popcount(pat | set[w].pattern));
        if (best == params_.pht_ways || num * best_den > best_num * den) {
            best = w;
            best_num = num;
            best_den = den;
        }
    }

    if (best != params_.pht_ways &&
        best_num * 100 >= params_.merge_threshold_pct * best_den) {
        set[best].pattern = mergePatterns(set[best].pattern, pat);
        if (set[best].merges < 255)
            ++set[best].merges;
        return;
    }

    // No mergeable way: claim an invalid way, else victimize the
    // least-merged one (lowest index on ties — deterministic).
    unsigned victim = 0;
    for (unsigned w = 0; w < params_.pht_ways; ++w) {
        if (set[w].merges == 0) {
            victim = w;
            break;
        }
        if (set[w].merges < set[victim].merges)
            victim = w;
    }
    set[victim].pattern = pat;
    set[victim].merges = 1;
}

void
PmpTables::predict(std::uint64_t region, unsigned trigger,
                   std::vector<Addr>& out) const
{
    const PhtWay* set =
        &pht_[static_cast<std::size_t>(trigger) * params_.pht_ways];
    const PhtWay* way = nullptr;
    for (unsigned w = 0; w < params_.pht_ways; ++w) {
        if (set[w].merges == 0)
            continue;
        if (way == nullptr || set[w].merges > way->merges)
            way = &set[w];
    }
    if (way == nullptr)
        return;

    // De-anchor around the trigger, nearest line first, forward before
    // backward, throttled by distance and degree.
    unsigned emitted = 0;
    for (unsigned dd = 1; dd <= params_.max_distance; ++dd) {
        const unsigned bits[2] = {dd, kRegionLines - dd};
        for (unsigned k = 0; k < 2; ++k) {
            if (k == 1 && bits[1] == bits[0])
                continue; // dd == 32: forward and backward coincide
            if (!((way->pattern >> bits[k]) & 1))
                continue;
            const unsigned toff = (trigger + bits[k]) % kRegionLines;
            out.push_back(region * (kRegionLines * kLineBytes) +
                          static_cast<Addr>(toff) * kLineBytes);
            if (++emitted >= params_.degree)
                return;
        }
    }
}

unsigned
PmpTables::phtOccupancy(unsigned set) const
{
    unsigned n = 0;
    const PhtWay* s = &pht_[static_cast<std::size_t>(set) * params_.pht_ways];
    for (unsigned w = 0; w < params_.pht_ways; ++w)
        n += s[w].merges != 0;
    return n;
}

void
PmpTables::reset()
{
    acc_.clear();
    for (PhtWay& w : pht_)
        w = PhtWay{};
}

void
PmpTables::saveState(CkptWriter& w) const
{
    // Field-wise (AccEntry/PhtWay carry padding); refmodel::RefPmp writes
    // the identical sequence — keep the two in lockstep.
    w.put<std::uint64_t>(acc_.size());
    for (const AccEntry& e : acc_) {
        w.put(e.region);
        w.put(e.trigger);
        w.put(e.pattern);
    }
    for (const PhtWay& way : pht_) {
        w.put(way.pattern);
        w.put(way.merges);
    }
}

void
PmpTables::loadState(CkptReader& r)
{
    acc_.clear();
    std::uint64_t n = r.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < n; ++i) {
        AccEntry e;
        r.get(e.region);
        r.get(e.trigger);
        r.get(e.pattern);
        acc_.push_back(e);
    }
    for (PhtWay& way : pht_) {
        r.get(way.pattern);
        r.get(way.merges);
    }
}

// ---------------------------------------------------------------------------
// PmpPrefetcher
// ---------------------------------------------------------------------------

PmpPrefetcher::PmpPrefetcher(const PmpParams& params)
    : CustomComponent("pmp"), tables_(params)
{}

void
PmpPrefetcher::attach(PfmSystem& sys, const Workload& w,
                      const PmpParams& params)
{
    RstEntry begin;
    begin.type = ObsType::kRoiBegin;
    begin.roi_begin = true;
    sys.retireAgent().rst().add(w.pc("roi_begin"), begin);
    sys.setComponent(std::make_unique<PmpPrefetcher>(params));
}

void
PmpPrefetcher::onAttach()
{
    ctr_candidates_ = &stats().counter("pmp_candidates");
    ctr_dropped_ = &stats().counter("pmp_dropped");
    acct_.bindCounters(stats());
}

void
PmpPrefetcher::onCacheEvent(const CacheEvent& e)
{
    acct_.onCacheEvent(e);
    if (e.type != CacheEventType::kDemandAccess || e.ifetch)
        return;
    scratch_.clear();
    tables_.onAccess(e.line, scratch_);
    for (Addr a : scratch_) {
        if (pending_.size() >= kPendingCap) {
            if (ctr_dropped_)
                ++*ctr_dropped_;
            continue;
        }
        pending_.push_back(a);
        if (ctr_candidates_)
            ++*ctr_candidates_;
    }
}

void
PmpPrefetcher::rfStep(Cycle now)
{
    while (!pending_.empty()) {
        const Addr a = pending_.front();
        if (!issueLoad(0, a, 8, now, /*prefetch_only=*/true))
            break; // width budget or IntQ-IS full; retry next RF cycle
        acct_.onIssue(a); // candidates are line-aligned by construction
        pending_.pop_front();
    }
}

Cycle
PmpPrefetcher::nextEventCycle(Cycle now) const
{
    // Busy while a squash replay drains or candidates await issue; idle
    // otherwise — the next cache event re-arms us synchronously and any
    // resulting work is observed at the following RF edge via this hook.
    if (replaying() || !pending_.empty())
        return now;
    return kNoCycle;
}

void
PmpPrefetcher::reset()
{
    CustomComponent::reset();
    tables_.reset();
    pending_.clear();
    acct_.reset();
}

void
PmpPrefetcher::dumpDebug(std::ostream& os) const
{
    CustomComponent::dumpDebug(os);
    os << "pmp: pending=" << pending_.size()
       << " acc=" << tables_.accOccupancy()
       << " issued=" << acct_.issued()
       << " useful=" << acct_.useful()
       << " useless=" << acct_.useless()
       << " inflight=" << acct_.inflight() << "\n";
}

void
PmpPrefetcher::saveState(CkptWriter& w) const
{
    CustomComponent::saveState(w);
    tables_.saveState(w);
    w.putDeque(pending_);
    acct_.saveState(w);
}

void
PmpPrefetcher::loadState(CkptReader& r)
{
    CustomComponent::loadState(r);
    tables_.loadState(r);
    r.getDeque(pending_);
    acct_.loadState(r);
}

} // namespace pfm
