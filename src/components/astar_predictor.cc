#include "components/astar_predictor.h"

#include <ostream>

#include "common/log.h"

namespace pfm {

namespace {
constexpr unsigned kKindIndex = 0;
constexpr unsigned kKindWay = 1;
constexpr unsigned kKindMap = 2;
} // namespace

AstarPredictor::AstarPredictor(const Workload& w,
                               const AstarPredictorOptions& opt)
    : CustomComponent("astar-predictor"),
      opt_(opt),
      pc_roi_begin_(w.pc("roi_begin")),
      pc_yoffset_(w.pc("snoop_yoffset")),
      pc_inbase_(w.pc("snoop_inbase")),
      pc_waymap_(w.pc("snoop_waymap")),
      pc_maparp_(w.pc("snoop_maparp")),
      pc_induction_(w.pc("snoop_induction")),
      ring_(opt.index_queue_entries)
{
    for (unsigned n = 0; n < kNeighbors; ++n) {
        way_pcs_.push_back(w.pc("br_way" + std::to_string(n)));
        map_pcs_.push_back(w.pc("br_map" + std::to_string(n)));
    }
}

void
AstarPredictor::attach(PfmSystem& sys, const Workload& w,
                       const AstarPredictorOptions& opt)
{
    RetireSnoopTable& rst = sys.retireAgent().rst();
    FetchSnoopTable& fst = sys.fetchAgent().fst();

    RstEntry begin;
    begin.type = ObsType::kRoiBegin;
    begin.roi_begin = true;
    rst.add(w.pc("roi_begin"), begin);
    rst.add(w.pc("snoop_yoffset"), begin); // per-call resynchronization

    RstEntry dest;
    dest.type = ObsType::kDestValue;
    rst.add(w.pc("snoop_inbase"), dest);
    rst.add(w.pc("snoop_waymap"), dest);
    rst.add(w.pc("snoop_maparp"), dest);
    rst.add(w.pc("snoop_induction"), dest);

    RstEntry branch;
    branch.type = ObsType::kBranchOutcome;
    for (unsigned n = 0; n < 8; ++n) {
        Addr way = w.pc("br_way" + std::to_string(n));
        Addr map = w.pc("br_map" + std::to_string(n));
        rst.add(way, branch);
        fst.add(way);
        if (opt.predict_maparp) {
            rst.add(map, branch);
            fst.add(map);
        }
    }

    sys.setComponent(std::make_unique<AstarPredictor>(w, opt));
}

std::uint64_t
AstarPredictor::makeId(unsigned kind, std::uint64_t iter, unsigned nb) const
{
    return (static_cast<std::uint64_t>(gen_) << 48) |
           (static_cast<std::uint64_t>(kind) << 46) |
           (static_cast<std::uint64_t>(nb) << 43) |
           (iter & ((std::uint64_t{1} << 43) - 1));
}

std::uint32_t
AstarPredictor::predMeta(unsigned kind, std::uint64_t iter, unsigned nb)
{
    return static_cast<std::uint32_t>((kind << 30) | (nb << 27) |
                                      (iter & ((1u << 27) - 1)));
}

void
AstarPredictor::onAttach()
{
    ctr_patch_insertions_ = &stats().counter("patch_insertions");
    ctr_patch_deletions_ = &stats().counter("patch_deletions");
}

void
AstarPredictor::reset()
{
    CustomComponent::reset();
    for (Iter& it : ring_)
        it = Iter{};
    alloc_iter_ = 0;
    t1_iter_ = 0;
    t2_iter_ = 0;
    t2_nb_ = 0;
    commit_iter_ = 0;
    next_i_ = 0;
    in_base_valid_ = false;
    ++gen_;
    // fillnum_, bases and yoffset_ are configuration registers and persist.
}

void
AstarPredictor::onObservation(const ObsPacket& p, Cycle now)
{
    (void)now;
    if (p.type == ObsType::kRoiBegin) {
        if (p.pc == pc_roi_begin_) {
            fillnum_ = p.value;
        } else if (p.pc == pc_yoffset_) {
            yoffset_ = static_cast<std::int64_t>(p.value);
            const std::int64_t y = yoffset_;
            const std::int64_t offs[kNeighbors] = {-y - 1, -y, -y + 1, -1,
                                                   +1,     y - 1, y, y + 1};
            for (unsigned n = 0; n < kNeighbors; ++n)
                offsets_[n] = offs[n];
        }
        return;
    }
    if (p.type == ObsType::kDestValue) {
        if (p.pc == pc_inbase_) {
            in_base_ = p.value;
            in_base_valid_ = true;
        } else if (p.pc == pc_waymap_) {
            waymap_base_ = p.value;
        } else if (p.pc == pc_maparp_) {
            maparp_base_ = p.value;
        } else if (p.pc == pc_induction_) {
            ++commit_iter_;
        }
        return;
    }
    // Branch-outcome packets: the hardware design uses them to validate and
    // advance fine-grained commit state; the model only needs the queue
    // bandwidth they consume.
}

void
AstarPredictor::onLoadReturn(const LoadReturn& r, Cycle now)
{
    (void)now;
    if ((r.id >> 48) != gen_)
        return; // stale return from before a call-boundary reset
    unsigned kind = static_cast<unsigned>((r.id >> 46) & 3);
    unsigned nb = static_cast<unsigned>((r.id >> 43) & 7);
    std::uint64_t iter = r.id & ((std::uint64_t{1} << 43) - 1);

    Iter& it = slot(iter);
    if (it.state == Iter::kFree || it.number != iter)
        return; // slot was reclaimed

    if (kind == kKindIndex) {
        it.index = static_cast<std::int32_t>(r.value); // worklist is int32
        it.state = Iter::kHaveIndex;
        return;
    }
    Neighbor& n = it.nb[nb];
    if (kind == kKindWay) {
        n.way_visited =
            (static_cast<std::uint32_t>(r.value) ==
             static_cast<std::uint32_t>(fillnum_));
        n.way_valid = true;
    } else {
        n.map_blocked = (static_cast<std::uint32_t>(r.value) != 0);
        n.map_valid = true;
    }
}

void
AstarPredictor::stepT0(Cycle now)
{
    if (!in_base_valid_)
        return;
    while (alloc_iter_ < commit_iter_ + ring_.size() &&
           alloc_iter_ < t2_iter_ + ring_.size()) {
        Iter& it = slot(alloc_iter_);
        // The slot must be fully drained by T2 before reuse.
        if (it.state != Iter::kFree && it.number + ring_.size() != alloc_iter_)
            break;
        if (!issueLoad(makeId(kKindIndex, alloc_iter_, 0),
                       in_base_ + 4 * next_i_, 4, now)) {
            break; // width budget or IntQ-IS full
        }
        it = Iter{};
        it.state = Iter::kWaitIndex;
        it.number = alloc_iter_;
        ++alloc_iter_;
        ++next_i_;
    }
}

void
AstarPredictor::stepT1(Cycle now)
{
    while (t1_iter_ < alloc_iter_) {
        Iter& it = slot(t1_iter_);
        if (it.state != Iter::kHaveIndex || it.number != t1_iter_)
            return; // index not returned yet (in-order consumption)
        while (it.t1_next < kNeighbors) {
            unsigned n = it.t1_next;
            Neighbor& nb = it.nb[n];
            if (!nb.way_issued) {
                std::int64_t index1 = it.index + offsets_[n];
                Addr way_addr =
                    waymap_base_ + static_cast<Addr>(index1) * 8;
                if (!issueLoad(makeId(kKindWay, t1_iter_, n), way_addr, 4,
                               now))
                    return;
                nb.index1 = index1;
                nb.way_issued = true;
            }
            if (!nb.map_issued) {
                Addr map_addr =
                    maparp_base_ + static_cast<Addr>(nb.index1) * 4;
                if (!issueLoad(makeId(kKindMap, t1_iter_, n), map_addr, 4,
                               now))
                    return;
                nb.map_issued = true;
            }
            ++it.t1_next;
        }
        ++t1_iter_;
    }
}

void
AstarPredictor::stepT2(Cycle now)
{
    while (t2_iter_ < alloc_iter_) {
        Iter& it = slot(t2_iter_);
        if (it.number != t2_iter_)
            return;
        while (t2_nb_ < kNeighbors) {
            // T1 must have issued this neighbor's loads.
            if (t2_iter_ > t1_iter_ ||
                (t2_iter_ == t1_iter_ && t2_nb_ >= it.t1_next))
                return;
            Neighbor& n = it.nb[t2_nb_];
            if (!n.way_valid)
                return;
            bool visited;
            if (n.emit_state == 0) {
                bool inferred =
                    opt_.inference && camHit(n.index1, t2_iter_, t2_nb_);
                visited = inferred || n.way_visited;
                if (visited) {
                    // Final prediction [T, -].
                    if (!emitPrediction(true, now,
                                        predMeta(kKindWay, t2_iter_,
                                                 t2_nb_)))
                        return;
                    n.emit_state = 2;
                } else {
                    if (!emitPrediction(false, now,
                                        predMeta(kKindWay, t2_iter_,
                                                 t2_nb_)))
                        return;
                    n.emit_state = opt_.predict_maparp ? 1 : 2;
                }
            }
            if (n.emit_state == 1) {
                // The maparp prediction of a [NT, x] pair.
                if (!n.map_valid)
                    return;
                if (!emitPrediction(n.map_blocked, now,
                                    predMeta(kKindMap, t2_iter_, t2_nb_)))
                    return;
                n.emit_state = 2;
                if (!n.map_blocked) {
                    // [NT, NT]: the control-dependent store will execute.
                    n.inferred_store = true;
                }
            }
            ++t2_nb_;
        }
        t2_nb_ = 0;
        ++t2_iter_;
    }
}

bool
AstarPredictor::camHit(std::int64_t index1, std::uint64_t iter,
                       unsigned nb) const
{
    std::uint64_t oldest =
        alloc_iter_ > ring_.size() ? alloc_iter_ - ring_.size() : 0;
    for (std::uint64_t k = oldest; k <= iter; ++k) {
        const Iter& it = ring_[k % ring_.size()];
        if (it.state == Iter::kFree || it.number != k)
            continue;
        unsigned limit = (k == iter) ? nb : kNeighbors;
        for (unsigned n = 0; n < limit; ++n) {
            const Neighbor& cand = it.nb[n];
            if (cand.inferred_store && cand.index1 == index1)
                return true;
        }
    }
    return false;
}

void
AstarPredictor::dumpDebug(std::ostream& os) const
{
    CustomComponent::dumpDebug(os);
    os << "astar: alloc=" << alloc_iter_ << " t1=" << t1_iter_
       << " t2=" << t2_iter_ << "/" << t2_nb_ << " commit=" << commit_iter_
       << " next_i=" << next_i_ << " in_base_valid=" << in_base_valid_
       << " gen=" << gen_ << "\n";
    for (size_t i = 0; i < ring_.size(); ++i) {
        const Iter& it = ring_[i];
        os << "  slot" << i << ": state=" << int(it.state)
           << " num=" << it.number << " t1_next=" << it.t1_next << " nb[";
        for (unsigned n = 0; n < kNeighbors; ++n) {
            os << (it.nb[n].way_valid ? "W" : "w")
               << (it.nb[n].map_valid ? "M" : "m")
               << int(it.nb[n].emit_state) << " ";
        }
        os << "]\n";
    }
}

void
AstarPredictor::rfStep(Cycle now)
{
    if (waymap_base_ == kBadAddr || maparp_base_ == kBadAddr)
        return;
    stepT0(now);
    stepT1(now);
    stepT2(now);
}

void
AstarPredictor::patchLog(const SquashInfo& info)
{
    if (!info.branch_mispredict || !opt_.predict_maparp)
        return;

    // The mispredicted branch's own prediction sits just before the
    // rollback position (it resolved and keeps its pop).
    if (info.rollback_pos == 0)
        return;
    std::uint64_t pos = info.rollback_pos - 1;
    std::uint32_t meta = logMetaAt(pos);
    unsigned kind = meta >> 30;
    unsigned nb = (meta >> 27) & 7;
    std::uint64_t iter_lo = meta & ((1u << 27) - 1);

    // Locate the ring slot (iteration numbers are tagged modulo 2^27).
    Iter* it = nullptr;
    for (Iter& cand : ring_) {
        if (cand.state != Iter::kFree &&
            (cand.number & ((1u << 27) - 1)) == iter_lo) {
            it = &cand;
            break;
        }
    }

    bool is_way = false;
    for (Addr pc : way_pcs_) {
        if (pc == info.branch_pc)
            is_way = true;
    }

    if (is_way && kind == kKindWay) {
        if (!info.actual_taken && logDirAt(pos)) {
            // Predicted visited [T,-] but the core found it unvisited: the
            // maparp branch now executes; splice in its raw predicate.
            bool blocked = it ? it->nb[nb].map_blocked : false;
            logSetDirAt(pos, false);
            logInsertAt(info.rollback_pos, blocked,
                        predMeta(kKindMap, iter_lo, nb));
            if (it && !blocked)
                it->nb[nb].inferred_store = true;
            ++*ctr_patch_insertions_;
        } else if (info.actual_taken && !logDirAt(pos)) {
            // Predicted unvisited [NT,x] but it was visited: the recorded
            // maparp prediction will never be consumed; drop it.
            if (info.rollback_pos < genPos()) {
                std::uint32_t next_meta = logMetaAt(info.rollback_pos);
                if ((next_meta >> 30) == kKindMap)
                    logEraseAt(info.rollback_pos);
            }
            logSetDirAt(pos, true);
            if (it)
                it->nb[nb].inferred_store = false;
            ++*ctr_patch_deletions_;
        }
    }
}

} // namespace pfm
