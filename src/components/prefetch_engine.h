/**
 * @file
 * Configurable FSM prefetch engine (Section 4.3, Figure 16): one or more
 * nested-loop address generators ("Prefetch Generation Engines"), each
 * paced by the retired-instance counter of its delinquent load and an
 * adaptive prefetch distance. The five custom prefetchers (libquantum,
 * bwaves, lbm, milc, leslie) are factory-configured instances.
 */

#ifndef PFM_COMPONENTS_PREFETCH_ENGINE_H
#define PFM_COMPONENTS_PREFETCH_ENGINE_H

#include <vector>

#include "components/adaptive_distance.h"
#include "pfm/component.h"
#include "pfm/pfm_system.h"
#include "pfm/prefetch_stats.h"
#include "workloads/workload.h"

namespace pfm {

/** One delinquent-load pattern, expressed as a nested-counter FSM. */
struct PrefetchStream {
    std::string name;

    struct Level {
        std::uint64_t count;       ///< trip count
        std::int64_t stride_bytes; ///< address step per iteration
    };

    Addr base = 0;
    std::vector<Level> levels;     ///< outermost first; innermost last
    std::uint64_t unit_elems = 8;  ///< innermost steps per prefetch unit
    std::vector<std::int64_t> set_offsets{0}; ///< cluster offsets (lbm)

    Addr feedback_pc = kBadAddr;   ///< count_only RST PC pacing this stream
    double events_per_unit = 8.0;  ///< retired events per emitted unit
    bool skip_if_full = false;     ///< push the set or skip it (lbm MLP)
    bool wrap = true;              ///< restart at the outer-loop end
};

class FsmPrefetcher : public CustomComponent
{
  public:
    FsmPrefetcher(std::string name, std::vector<PrefetchStream> streams,
                  const AdaptiveDistance::Params& adapt = {});

    void reset() override;

    /**
     * Fast-forward horizon: busy while any stream has issue work queued
     * (or a squash replay is draining); otherwise the earliest
     * adaptive-distance epoch boundary across the live streams.
     */
    Cycle nextEventCycle(Cycle now) const override;

    /**
     * Configure the RST (roi_begin + count_only feedback PCs) and install
     * the engine.
     */
    static void attach(PfmSystem& sys, const Workload& w,
                       std::vector<PrefetchStream> streams,
                       const AdaptiveDistance::Params& adapt = {});

    bool supportsCheckpoint() const override { return true; }
    void saveState(CkptWriter& w) const override;
    void loadState(CkptReader& r) override;

    /** Coverage/accuracy accounting rides on the cache observation tap. */
    bool wantsCacheEvents() const override { return true; }
    void onCacheEvent(const CacheEvent& e) override
    {
        acct_.onCacheEvent(e);
    }
    const PrefetchAccounting* prefetchAccounting() const override
    {
        return &acct_;
    }

  protected:
    void rfStep(Cycle now) override;
    void onObservation(const ObsPacket& p, Cycle now) override;
    void onAttach() override;

  private:
    struct StreamState {
        std::vector<std::uint64_t> idx; ///< per-level counters
        std::uint64_t units_issued = 0;
        bool done = false;
        AdaptiveDistance adapt;
        std::vector<Addr> pending;      ///< set awaiting queue space
    };

    Addr currentAddr(const PrefetchStream& s, const StreamState& st) const;
    bool advance(const PrefetchStream& s, StreamState& st);

    std::vector<PrefetchStream> streams_;
    std::vector<StreamState> state_;

    // PFM_PF_TRACE issue tracing (env checked once; per-instance counter
    // so concurrent sweep workers don't share a static).
    bool trace_enabled_ = false;
    unsigned long trace_count_ = 0;

    // Bound once in onAttach(); rfStep() increments these per prefetch.
    Counter* ctr_sets_skipped_ = nullptr;
    Counter* ctr_prefetches_issued_ = nullptr;

    PrefetchAccounting acct_;
};

} // namespace pfm

#endif // PFM_COMPONENTS_PREFETCH_ENGINE_H
