/**
 * @file
 * Custom bfs component (Section 4.2, Figure 11): four decoupled engines.
 *
 *  T0 — sliding window over the program's global frontier (frontier queue).
 *  T1 — pops node U, loads offsets[U] and offsets[U+1]; pushes U's first
 *       neighbor address and trip count (begin-address / trip-count
 *       queues).
 *  T2 — loads all of U's neighbors into the neighbor queue and provides
 *       the trip count for the hard-to-predict neighbor-loop branch.
 *  T3 — loads each neighbor V's visited-ness (parent array) and computes
 *       the visited-branch predicate, inferring in-flight visited stores
 *       by searching the neighbor queue for older unretired instances of
 *       the same V.
 *
 * The emitted stream interleaves loop-branch and visited-branch
 * predictions exactly as the core fetches them: (NT, visited_j) per
 * neighbor, then the loop-exit T.
 */

#ifndef PFM_COMPONENTS_BFS_COMPONENT_H
#define PFM_COMPONENTS_BFS_COMPONENT_H

#include <vector>

#include "pfm/component.h"
#include "pfm/pfm_system.h"
#include "workloads/workload.h"

namespace pfm {

struct BfsComponentOptions {
    unsigned queue_entries = 64;  ///< frontier & other queues (Figure 14)
    bool inference = true;        ///< duplicate-V visited-store inference
    bool predict_visited = true;  ///< false: loop-branch only
    bool predict_loop = true;     ///< false: visited-branch only (slipstream)
};

class BfsComponent : public CustomComponent
{
  public:
    BfsComponent(const Workload& w, const BfsComponentOptions& opt);

    void reset() override;
    void dumpDebug(std::ostream& os) const override;

    static void attach(PfmSystem& sys, const Workload& w,
                       const BfsComponentOptions& opt = {});

  protected:
    void rfStep(Cycle now) override;
    void onObservation(const ObsPacket& p, Cycle now) override;
    void onLoadReturn(const LoadReturn& r, Cycle now) override;
    void patchLog(const SquashInfo& info) override;
    void onAttach() override;

  private:
    struct NodeSlot {
        enum State : std::uint8_t {
            kFree, kWaitU, kHaveU, kWaitOffsets, kHaveOffsets
        };
        State state = kFree;
        std::uint64_t number = 0;  ///< node ordinal within the level
        std::int64_t u = 0;
        std::uint64_t off_a = 0;
        std::uint64_t off_b = 0;
        bool a_valid = false;
        bool b_valid = false;
        std::uint64_t trip = 0;
        std::uint8_t t1_issued = 0; ///< offset loads issued (0..2)
        std::uint64_t nb_base = 0; ///< global neighbor ordinal of 1st nb
        bool t2_started = false;
        std::uint64_t t2_next = 0; ///< next neighbor load to issue
    };

    struct NbSlot {
        bool used = false;
        std::uint64_t ordinal = 0; ///< global neighbor ordinal (tag)
        std::uint64_t node = 0;    ///< owning node ordinal
        std::int64_t v = 0;
        bool v_valid = false;
        bool vis_issued = false;
        bool vis_valid = false;
        bool visited = false;      ///< committed parent[v] >= 0
        bool predicted_enter = false; ///< final pred NT: store will execute
        bool emitted = false;
    };

    std::uint64_t makeId(unsigned kind, unsigned sub,
                         std::uint64_t ordinal) const;
    static std::uint32_t predMeta(unsigned kind, std::uint64_t ordinal);

    NodeSlot& node(std::uint64_t ord) { return nodes_[ord % nodes_.size()]; }
    NbSlot& nb(std::uint64_t ord) { return nbq_[ord % nbq_.size()]; }

    void stepT0(Cycle now);
    void stepT1(Cycle now);
    void stepT2(Cycle now);
    void stepT3(Cycle now);
    void stepEmit(Cycle now);
    void reclaim();
    bool duplicateInFlight(std::int64_t v, std::uint64_t ordinal) const;

    BfsComponentOptions opt_;

    Addr pc_roi_begin_, pc_offsets_, pc_neighbors_, pc_parent_,
        pc_induction_;
    Addr pc_br_nbloop_, pc_br_visited_;

    // Persistent configuration.
    Addr offsets_base_ = kBadAddr;
    Addr neighbors_base_ = kBadAddr;
    Addr parent_base_ = kBadAddr;

    // Per-level state.
    Addr frontier_base_ = kBadAddr;
    bool frontier_valid_ = false;
    std::vector<NodeSlot> nodes_;
    std::vector<NbSlot> nbq_;
    std::uint64_t node_alloc_ = 0;  ///< T0 tail
    std::uint64_t t1_node_ = 0;
    std::uint64_t t2_node_ = 0;
    std::uint64_t nb_alloc_ = 0;    ///< global neighbor ordinal tail
    std::uint64_t t3_ord_ = 0;      ///< T3 cursor over neighbor ordinals
    std::uint64_t nb_head_ = 0;     ///< oldest live neighbor ordinal
    std::uint64_t commit_node_ = 0; ///< retired node iterations
    std::uint64_t next_i_ = 0;      ///< next frontier element for T0

    // Emitter cursor.
    std::uint64_t e_node_ = 0;
    std::uint64_t e_j_ = 0;
    std::uint8_t e_phase_ = 0;      ///< 0: loop pred, 1: visited pred

    std::uint16_t gen_ = 0;

    // Bound once in onAttach(); patchLog() runs on every FST squash.
    Counter* ctr_visited_patches_ = nullptr;
    Counter* ctr_loop_patches_ = nullptr;
};

} // namespace pfm

#endif // PFM_COMPONENTS_BFS_COMPONENT_H
