#include "components/astar_alt_predictor.h"

#include <ostream>

#include "common/bitutils.h"
#include "common/log.h"

namespace pfm {

namespace {
constexpr unsigned kMetaWay = 1;
constexpr unsigned kMetaMap = 2;

std::uint32_t
meta(unsigned kind, size_t table_index)
{
    return static_cast<std::uint32_t>((kind << 30) |
                                      (table_index & ((1u << 30) - 1)));
}
} // namespace

AstarAltPredictor::AstarAltPredictor(const Workload& w,
                                     const AstarAltOptions& opt)
    : CustomComponent("astar-alt"),
      opt_(opt),
      pc_roi_begin_(w.pc("roi_begin")),
      pc_yoffset_(w.pc("snoop_yoffset")),
      pc_inbase_(w.pc("snoop_inbase")),
      pc_waymap_(w.pc("snoop_waymap")),
      pc_maparp_(w.pc("snoop_maparp")),
      pc_induction_(w.pc("snoop_induction"))
{
    // One tag byte per entry: a 32KB table tracks 32Ki cells.
    way_table_.assign(opt.table_bytes, 0xFF);
    // Two bits per entry packed as one byte for simplicity of modeling
    // (the cost model charges the architected 2 bits).
    map_state_.assign(opt.table_bytes, 0);
    pfm_assert(isPow2(way_table_.size()) && isPow2(map_state_.size()),
               "astar-alt tables must be powers of two");
    collecting_.reserve(opt.worklist_entries);
    for (unsigned n = 0; n < kNeighbors; ++n) {
        out_store_pcs_.insert(w.pc("st_out" + std::to_string(n)));
        way_store_pcs_.insert(w.pc("st_way" + std::to_string(n)));
        way_branch_pcs_.insert(w.pc("br_way" + std::to_string(n)));
        map_branch_pcs_.insert(w.pc("br_map" + std::to_string(n)));
    }
}

void
AstarAltPredictor::attach(PfmSystem& sys, const Workload& w,
                          const AstarAltOptions& opt)
{
    RetireSnoopTable& rst = sys.retireAgent().rst();
    FetchSnoopTable& fst = sys.fetchAgent().fst();

    RstEntry begin;
    begin.type = ObsType::kRoiBegin;
    begin.roi_begin = true;
    rst.add(w.pc("roi_begin"), begin);
    rst.add(w.pc("snoop_yoffset"), begin);

    RstEntry dest;
    dest.type = ObsType::kDestValue;
    rst.add(w.pc("snoop_inbase"), dest);
    rst.add(w.pc("snoop_waymap"), dest);
    rst.add(w.pc("snoop_maparp"), dest);

    RstEntry store;
    store.type = ObsType::kStoreValue;
    RstEntry branch;
    branch.type = ObsType::kBranchOutcome;
    for (unsigned n = 0; n < 8; ++n) {
        rst.add(w.pc("st_out" + std::to_string(n)), store);
        rst.add(w.pc("st_way" + std::to_string(n)), store);
        Addr way = w.pc("br_way" + std::to_string(n));
        Addr map = w.pc("br_map" + std::to_string(n));
        rst.add(way, branch);
        rst.add(map, branch);
        fst.add(way);
        fst.add(map);
    }

    sys.setComponent(std::make_unique<AstarAltPredictor>(w, opt));
}

void
AstarAltPredictor::onAttach()
{
    ctr_default_predictions_ = &stats().counter("alt_default_predictions");
    ctr_map_learned_ = &stats().counter("alt_map_learned");
    ctr_patch_insertions_ = &stats().counter("alt_patch_insertions");
    ctr_patch_deletions_ = &stats().counter("alt_patch_deletions");
}

void
AstarAltPredictor::reset()
{
    CustomComponent::reset();
    // Per-call state: swap the collected worklist in; tables persist.
    draining_ = std::move(collecting_);
    collecting_.clear();
    drain_pos_ = 0;
    nb_pos_ = 0;
    phase_ = 0;
}

void
AstarAltPredictor::onObservation(const ObsPacket& p, Cycle now)
{
    (void)now;
    switch (p.type) {
      case ObsType::kRoiBegin:
        if (p.pc == pc_roi_begin_) {
            fillnum_ = p.value;
        } else if (p.pc == pc_yoffset_) {
            yoffset_ = static_cast<std::int64_t>(p.value);
            const std::int64_t y = yoffset_;
            const std::int64_t offs[kNeighbors] = {-y - 1, -y, -y + 1, -1,
                                                   +1,     y - 1, y, y + 1};
            for (unsigned n = 0; n < kNeighbors; ++n)
                offsets_[n] = offs[n];
        }
        return;
      case ObsType::kDestValue:
        if (p.pc == pc_waymap_)
            waymap_base_ = p.value;
        return;
      case ObsType::kStoreValue: {
        // Two families of stores are snooped: output-worklist pushes
        // (value = index1; collect for the next call) and waymap fillnum
        // stores (active table update by address).
        if (way_store_pcs_.count(p.pc)) {
            if (waymap_base_ != kBadAddr && p.mem_addr >= waymap_base_) {
                std::int64_t index1 = static_cast<std::int64_t>(
                    (p.mem_addr - waymap_base_) / 8);
                way_table_[wayIndex(index1)] =
                    static_cast<std::uint8_t>(fillnum_);
            }
        } else if (out_store_pcs_.count(p.pc)) {
            auto index1 = static_cast<std::int32_t>(p.value);
            if (collecting_.size() < opt_.worklist_entries)
                collecting_.push_back(index1);
            else
                ++dropped_;
        }
        return;
      }
      default:
        return; // branch outcomes: bandwidth-only in this model
    }
}

void
AstarAltPredictor::rfStep(Cycle now)
{
    if (yoffset_ == 0)
        return;
    for (;;) {
        if (drain_pos_ >= draining_.size()) {
            // Worklist exhausted (either genuinely at the call's end or
            // truncated at 512 entries): keep the fetch unit fed with
            // default predict-visited packets; the per-call ROI squash
            // resynchronizes and mispredictions are bounded by the
            // truncation (the capacity weakness the paper calls out).
            if (!emitPrediction(true, now, meta(kMetaWay, 0)))
                return;
            ++*ctr_default_predictions_;
            continue;
        }
        std::int64_t index = draining_[drain_pos_];
        std::int64_t index1 = index + offsets_[nb_pos_];
        if (phase_ == 0) {
            bool visited = way_table_[wayIndex(index1)] ==
                           static_cast<std::uint8_t>(fillnum_);
            if (!emitPrediction(visited, now,
                                meta(kMetaWay, wayIndex(index1))))
                return;
            if (visited) {
                // [T, -]: no maparp branch follows.
                if (++nb_pos_ == kNeighbors) {
                    nb_pos_ = 0;
                    ++drain_pos_;
                }
                continue;
            }
            phase_ = 1;
        }
        // Maparp prediction from the learned table (0 = unknown: guess
        // free, and learn from the outcome via the patch path).
        std::uint8_t st = map_state_[mapIndex(index1)];
        bool blocked = (st == 2);
        if (!emitPrediction(blocked, now, meta(kMetaMap, mapIndex(index1))))
            return;
        if (!blocked) {
            // [NT, NT]: the program will mark index1 visited; mirror the
            // store speculatively so in-flight revisits predict correctly.
            way_table_[wayIndex(index1)] =
                static_cast<std::uint8_t>(fillnum_);
        }
        phase_ = 0;
        if (++nb_pos_ == kNeighbors) {
            nb_pos_ = 0;
            ++drain_pos_;
        }
    }
}

void
AstarAltPredictor::patchLog(const SquashInfo& info)
{
    if (!info.branch_mispredict || info.rollback_pos == 0)
        return;
    std::uint64_t pos = info.rollback_pos - 1;
    std::uint32_t m = logMetaAt(pos);
    unsigned kind = m >> 30;
    size_t table_index = m & ((1u << 30) - 1);

    if (map_branch_pcs_.count(info.branch_pc) && kind == kMetaMap) {
        // Learn the static maparp truth from the resolved outcome.
        map_state_[table_index & (map_state_.size() - 1)] =
            info.actual_taken ? 2 : 1;
        logSetDirAt(pos, info.actual_taken);
        if (info.actual_taken) {
            // We guessed [NT,NT] and speculatively marked the cell
            // visited, but the blocked maparp means the program never
            // stores: undo the poisoned waymap-table entry.
            way_table_[table_index & (way_table_.size() - 1)] = 0xFF;
        }
        ++*ctr_map_learned_;
        return;
    }
    if (!way_branch_pcs_.count(info.branch_pc) || kind != kMetaWay)
        return;
    if (!info.actual_taken && logDirAt(pos)) {
        // Predicted visited, actually not: a maparp branch follows.
        logSetDirAt(pos, false);
        bool blocked =
            map_state_[table_index & (map_state_.size() - 1)] == 2;
        logInsertAt(info.rollback_pos, blocked,
                    meta(kMetaMap, table_index & (map_state_.size() - 1)));
        ++*ctr_patch_insertions_;
    } else if (info.actual_taken && !logDirAt(pos)) {
        // Predicted not-visited but it was: drop the recorded maparp pred.
        if (info.rollback_pos < genPos() &&
            (logMetaAt(info.rollback_pos) >> 30) == kMetaMap)
            logEraseAt(info.rollback_pos);
        logSetDirAt(pos, true);
        way_table_[table_index & (way_table_.size() - 1)] =
            static_cast<std::uint8_t>(fillnum_);
        ++*ctr_patch_deletions_;
    }
}

void
AstarAltPredictor::dumpDebug(std::ostream& os) const
{
    CustomComponent::dumpDebug(os);
    os << "astar-alt: drain=" << drain_pos_ << "/" << draining_.size()
       << " nb=" << nb_pos_ << " phase=" << int(phase_)
       << " collecting=" << collecting_.size() << " dropped=" << dropped_
       << "\n";
}

} // namespace pfm
