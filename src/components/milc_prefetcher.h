/**
 * @file
 * milc custom prefetcher: libquantum-style streaming FSMs, one per su3
 * array, with adaptive distance control (Section 4.3).
 */

#ifndef PFM_COMPONENTS_MILC_PREFETCHER_H
#define PFM_COMPONENTS_MILC_PREFETCHER_H

#include "pfm/pfm_system.h"
#include "workloads/workload.h"

namespace pfm {

void attachMilcPrefetcher(PfmSystem& sys, const Workload& w);

} // namespace pfm

#endif // PFM_COMPONENTS_MILC_PREFETCHER_H
