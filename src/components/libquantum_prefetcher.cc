#include "components/libquantum_prefetcher.h"

#include "components/prefetch_engine.h"

namespace pfm {

void
attachLibquantumPrefetcher(PfmSystem& sys, const Workload& w)
{
    std::uint64_t nodes = w.metaVal("nodes");
    std::uint64_t stride = w.metaVal("stride");
    Addr reg = w.dataAddr("reg");

    std::vector<PrefetchStream> streams;

    PrefetchStream tof;
    tof.name = "toffoli";
    tof.base = reg;
    tof.levels = {{1u << 20, 0}, {nodes, static_cast<std::int64_t>(stride)}};
    tof.unit_elems = kLineBytes / stride;  // one prefetch per line
    tof.events_per_unit = static_cast<double>(kLineBytes / stride);
    tof.feedback_pc = w.pc("del_load_tof");
    streams.push_back(tof);

    PrefetchStream sig = tof;
    sig.name = "sigma_x";
    sig.feedback_pc = w.pc("del_load_sig");
    streams.push_back(sig);

    FsmPrefetcher::attach(sys, w, std::move(streams));
}

} // namespace pfm
