/**
 * @file
 * bwaves custom prefetcher: a deep nested-counter FSM that surgically
 * follows the plane-strided (transposed) access of the two delinquent
 * loads in the innermost loop (Section 4.3).
 */

#ifndef PFM_COMPONENTS_BWAVES_PREFETCHER_H
#define PFM_COMPONENTS_BWAVES_PREFETCHER_H

#include "pfm/pfm_system.h"
#include "workloads/workload.h"

namespace pfm {

void attachBwavesPrefetcher(PfmSystem& sys, const Workload& w);

} // namespace pfm

#endif // PFM_COMPONENTS_BWAVES_PREFETCHER_H
