#include "components/bfs_component.h"

#include <algorithm>
#include <ostream>

#include "common/log.h"

namespace pfm {

namespace {
constexpr unsigned kKindFrontier = 0;
constexpr unsigned kKindOffsets = 1;
constexpr unsigned kKindNeighbor = 2;
constexpr unsigned kKindVisited = 3;

constexpr unsigned kMetaLoop = 1;
constexpr unsigned kMetaVisited = 2;

// Garbage trip counts (from running ahead past the frontier end) are
// clamped so a bogus offsets read cannot wedge the engines; the per-level
// ROI-begin squash cleans the stream up anyway.
constexpr std::uint64_t kMaxTrip = 4096;
} // namespace

BfsComponent::BfsComponent(const Workload& w, const BfsComponentOptions& opt)
    : CustomComponent("bfs-component"),
      opt_(opt),
      pc_roi_begin_(w.pc("roi_begin")),
      pc_offsets_(w.pc("snoop_offsets")),
      pc_neighbors_(w.pc("snoop_neighbors")),
      pc_parent_(w.pc("snoop_parent")),
      pc_induction_(w.pc("snoop_induction")),
      pc_br_nbloop_(w.pc("br_nbloop")),
      pc_br_visited_(w.pc("br_visited")),
      nodes_(opt.queue_entries),
      nbq_(opt.queue_entries)
{}

void
BfsComponent::attach(PfmSystem& sys, const Workload& w,
                     const BfsComponentOptions& opt)
{
    RetireSnoopTable& rst = sys.retireAgent().rst();
    FetchSnoopTable& fst = sys.fetchAgent().fst();

    RstEntry begin;
    begin.type = ObsType::kRoiBegin;
    begin.roi_begin = true;
    rst.add(w.pc("roi_begin"), begin);

    RstEntry dest;
    dest.type = ObsType::kDestValue;
    rst.add(w.pc("snoop_offsets"), dest);
    rst.add(w.pc("snoop_neighbors"), dest);
    rst.add(w.pc("snoop_parent"), dest);
    rst.add(w.pc("snoop_induction"), dest);

    RstEntry branch;
    branch.type = ObsType::kBranchOutcome;
    if (opt.predict_loop) {
        rst.add(w.pc("br_nbloop"), branch);
        fst.add(w.pc("br_nbloop"));
    }
    if (opt.predict_visited) {
        rst.add(w.pc("br_visited"), branch);
        fst.add(w.pc("br_visited"));
    }

    sys.setComponent(std::make_unique<BfsComponent>(w, opt));
}

std::uint64_t
BfsComponent::makeId(unsigned kind, unsigned sub, std::uint64_t ordinal) const
{
    return (static_cast<std::uint64_t>(gen_) << 48) |
           (static_cast<std::uint64_t>(kind) << 46) |
           (static_cast<std::uint64_t>(sub) << 45) |
           (ordinal & ((std::uint64_t{1} << 45) - 1));
}

std::uint32_t
BfsComponent::predMeta(unsigned kind, std::uint64_t ordinal)
{
    return static_cast<std::uint32_t>((kind << 30) |
                                      (ordinal & ((1u << 30) - 1)));
}

void
BfsComponent::onAttach()
{
    ctr_visited_patches_ = &stats().counter("bfs_visited_patches");
    ctr_loop_patches_ = &stats().counter("bfs_loop_patches");
}

void
BfsComponent::reset()
{
    CustomComponent::reset();
    for (NodeSlot& s : nodes_)
        s = NodeSlot{};
    for (NbSlot& s : nbq_)
        s = NbSlot{};
    node_alloc_ = t1_node_ = t2_node_ = 0;
    nb_alloc_ = t3_ord_ = nb_head_ = 0;
    commit_node_ = 0;
    next_i_ = 0;
    e_node_ = e_j_ = 0;
    e_phase_ = 0;
    frontier_valid_ = false;
    ++gen_;
}

void
BfsComponent::onObservation(const ObsPacket& p, Cycle now)
{
    (void)now;
    if (p.type == ObsType::kRoiBegin && p.pc == pc_roi_begin_) {
        frontier_base_ = p.value;
        frontier_valid_ = true;
        return;
    }
    if (p.type == ObsType::kDestValue) {
        if (p.pc == pc_offsets_)
            offsets_base_ = p.value;
        else if (p.pc == pc_neighbors_)
            neighbors_base_ = p.value;
        else if (p.pc == pc_parent_)
            parent_base_ = p.value;
        else if (p.pc == pc_induction_)
            ++commit_node_;
    }
}

void
BfsComponent::onLoadReturn(const LoadReturn& r, Cycle now)
{
    (void)now;
    if ((r.id >> 48) != gen_)
        return;
    unsigned kind = static_cast<unsigned>((r.id >> 46) & 3);
    unsigned sub = static_cast<unsigned>((r.id >> 45) & 1);
    std::uint64_t ord = r.id & ((std::uint64_t{1} << 45) - 1);

    if (kind == kKindFrontier) {
        NodeSlot& s = node(ord);
        if (s.state != NodeSlot::kWaitU || s.number != ord)
            return;
        s.u = static_cast<std::int32_t>(r.value);
        s.state = NodeSlot::kHaveU;
        return;
    }
    if (kind == kKindOffsets) {
        NodeSlot& s = node(ord);
        // The two offset loads issue across RF cycles at low width; a
        // return may arrive while the slot is still mid-issue (kHaveU).
        if (s.number != ord || (s.state != NodeSlot::kWaitOffsets &&
                                s.state != NodeSlot::kHaveU))
            return;
        if (sub == 0) {
            s.off_a = r.value;
            s.a_valid = true;
        } else {
            s.off_b = r.value;
            s.b_valid = true;
        }
        if (s.state == NodeSlot::kWaitOffsets && s.a_valid && s.b_valid) {
            std::uint64_t trip =
                s.off_b > s.off_a ? s.off_b - s.off_a : 0;
            s.trip = std::min(trip, kMaxTrip);
            s.state = NodeSlot::kHaveOffsets;
        }
        return;
    }
    if (kind == kKindNeighbor) {
        NbSlot& s = nb(ord);
        if (!s.used || s.ordinal != ord)
            return;
        s.v = static_cast<std::int32_t>(r.value);
        s.v_valid = true;
        return;
    }
    // kKindVisited
    NbSlot& s = nb(ord);
    if (!s.used || s.ordinal != ord)
        return;
    s.visited = (static_cast<std::int32_t>(r.value) >= 0);
    s.vis_valid = true;
}

void
BfsComponent::reclaim()
{
    // Neighbor-queue entries are freed once emitted and their node has
    // retired (the design's commit head).
    while (nb_head_ < nb_alloc_) {
        NbSlot& s = nb(nb_head_);
        if (!s.used || s.ordinal != nb_head_)
            break;
        if (!s.emitted || s.node >= commit_node_)
            break;
        s.used = false;
        ++nb_head_;
    }
}

void
BfsComponent::stepT0(Cycle now)
{
    if (!frontier_valid_)
        return;
    while (node_alloc_ < commit_node_ + nodes_.size() &&
           node_alloc_ < e_node_ + nodes_.size()) {
        NodeSlot& s = node(node_alloc_);
        if (s.state != NodeSlot::kFree &&
            s.number + nodes_.size() != node_alloc_)
            break;
        if (!issueLoad(makeId(kKindFrontier, 0, node_alloc_),
                       frontier_base_ + 4 * next_i_, 4, now))
            break;
        s = NodeSlot{};
        s.state = NodeSlot::kWaitU;
        s.number = node_alloc_;
        ++node_alloc_;
        ++next_i_;
    }
}

void
BfsComponent::stepT1(Cycle now)
{
    while (t1_node_ < node_alloc_) {
        NodeSlot& s = node(t1_node_);
        if (s.number != t1_node_ || s.state != NodeSlot::kHaveU)
            return;
        Addr base = offsets_base_ + static_cast<Addr>(s.u) * 8;
        if (s.t1_issued == 0) {
            if (!issueLoad(makeId(kKindOffsets, 0, t1_node_), base, 8, now))
                return;
            s.t1_issued = 1;
        }
        if (s.t1_issued == 1) {
            if (!issueLoad(makeId(kKindOffsets, 1, t1_node_), base + 8, 8,
                           now))
                return;
            s.t1_issued = 2;
        }
        s.state = NodeSlot::kWaitOffsets;
        if (s.a_valid && s.b_valid) {
            std::uint64_t trip = s.off_b > s.off_a ? s.off_b - s.off_a : 0;
            s.trip = std::min(trip, kMaxTrip);
            s.state = NodeSlot::kHaveOffsets;
        }
        ++t1_node_;
    }
}

void
BfsComponent::stepT2(Cycle now)
{
    while (t2_node_ < t1_node_) {
        NodeSlot& s = node(t2_node_);
        if (s.number != t2_node_ || s.state != NodeSlot::kHaveOffsets)
            return;
        if (!s.t2_started) {
            s.nb_base = nb_alloc_;
            s.t2_next = 0;
            s.t2_started = true;
        }
        while (s.t2_next < s.trip) {
            std::uint64_t ord = s.nb_base + s.t2_next;
            NbSlot& n = nb(ord);
            if (n.used)
                return; // neighbor queue full (awaiting reclaim)
            if (!issueLoad(makeId(kKindNeighbor, 0, ord),
                           neighbors_base_ +
                               (s.off_a + s.t2_next) * 4,
                           4, now))
                return;
            n = NbSlot{};
            n.used = true;
            n.ordinal = ord;
            n.node = t2_node_;
            ++nb_alloc_;
            ++s.t2_next;
        }
        ++t2_node_;
    }
}

void
BfsComponent::stepT3(Cycle now)
{
    if (!opt_.predict_visited)
        return;
    while (t3_ord_ < nb_alloc_) {
        NbSlot& s = nb(t3_ord_);
        if (!s.used || s.ordinal != t3_ord_)
            return;
        if (!s.v_valid)
            return; // in-order visited issue
        if (!s.vis_issued) {
            if (!issueLoad(makeId(kKindVisited, 0, t3_ord_),
                           parent_base_ + static_cast<Addr>(s.v) * 4, 4,
                           now))
                return;
            s.vis_issued = true;
        }
        ++t3_ord_;
    }
}

bool
BfsComponent::duplicateInFlight(std::int64_t v, std::uint64_t ordinal) const
{
    std::uint64_t start = std::max(
        nb_head_, ordinal > nbq_.size() ? ordinal - nbq_.size() : 0);
    for (std::uint64_t k = start; k < ordinal; ++k) {
        const NbSlot& s = nbq_[k % nbq_.size()];
        if (s.used && s.ordinal == k && s.emitted && s.predicted_enter &&
            s.v == v)
            return true;
    }
    return false;
}

void
BfsComponent::stepEmit(Cycle now)
{
    for (;;) {
        if (e_node_ >= t1_node_)
            return;
        NodeSlot& s = node(e_node_);
        if (s.number != e_node_ || s.state != NodeSlot::kHaveOffsets)
            return;
        while (e_j_ < s.trip) {
            if (e_phase_ == 0) {
                if (opt_.predict_loop) {
                    // Neighbor-loop branch: not taken (iterate).
                    if (!emitPrediction(false, now,
                                        predMeta(kMetaLoop, e_node_)))
                        return;
                }
                e_phase_ = 1;
            }
            if (e_phase_ == 1) {
                if (opt_.predict_visited) {
                    std::uint64_t ord = s.nb_base + e_j_;
                    NbSlot& n = nb(ord);
                    if (!n.used || n.ordinal != ord || !n.vis_valid)
                        return;
                    bool inferred =
                        opt_.inference && duplicateInFlight(n.v, ord);
                    bool visited = inferred || n.visited;
                    if (!emitPrediction(visited, now,
                                        predMeta(kMetaVisited, ord)))
                        return;
                    n.predicted_enter = !visited;
                    n.emitted = true;
                } else {
                    std::uint64_t ord = s.nb_base + e_j_;
                    NbSlot& n = nb(ord);
                    if (n.used && n.ordinal == ord)
                        n.emitted = true;
                }
                e_phase_ = 0;
                ++e_j_;
            }
        }
        if (opt_.predict_loop) {
            // Loop-exit: taken.
            if (!emitPrediction(true, now, predMeta(kMetaLoop, e_node_)))
                return;
        }
        e_j_ = 0;
        e_phase_ = 0;
        ++e_node_;
    }
}

void
BfsComponent::dumpDebug(std::ostream& os) const
{
    CustomComponent::dumpDebug(os);
    os << "bfs: alloc=" << node_alloc_ << " t1=" << t1_node_
       << " t2=" << t2_node_ << " nb_alloc=" << nb_alloc_
       << " t3=" << t3_ord_ << " nb_head=" << nb_head_
       << " commit=" << commit_node_ << " emit=" << e_node_ << "/" << e_j_
       << "/" << int(e_phase_) << " frontier_valid=" << frontier_valid_
       << " gen=" << gen_ << "\n";
    for (size_t i = 0; i < std::min<size_t>(nodes_.size(), 8); ++i) {
        const NodeSlot& s = nodes_[i];
        os << "  node" << i << ": st=" << int(s.state) << " num=" << s.number
           << " u=" << s.u << " trip=" << s.trip << " t2_next=" << s.t2_next
           << " nb_base=" << s.nb_base << "\n";
    }
    for (size_t i = 0; i < std::min<size_t>(nbq_.size(), 8); ++i) {
        const NbSlot& s = nbq_[i];
        os << "  nb" << i << ": used=" << s.used << " ord=" << s.ordinal
           << " v=" << s.v << (s.v_valid ? " V" : " -")
           << (s.vis_issued ? "I" : "-") << (s.vis_valid ? "R" : "-")
           << (s.emitted ? "E" : "-") << "\n";
    }
}

void
BfsComponent::rfStep(Cycle now)
{
    if (offsets_base_ == kBadAddr || neighbors_base_ == kBadAddr ||
        parent_base_ == kBadAddr)
        return;
    reclaim();
    stepT0(now);
    stepT1(now);
    stepT2(now);
    stepT3(now);
    stepEmit(now);
}

void
BfsComponent::patchLog(const SquashInfo& info)
{
    if (!info.branch_mispredict || info.rollback_pos == 0)
        return;
    std::uint64_t pos = info.rollback_pos - 1;
    std::uint32_t meta = logMetaAt(pos);
    unsigned kind = meta >> 30;

    if (info.branch_pc == pc_br_visited_ && kind == kMetaVisited) {
        // Stream shape is unchanged (the visited branch's region contains
        // no FST branches); correct the recorded direction and the
        // inference mark so later duplicate searches see the truth.
        logSetDirAt(pos, info.actual_taken);
        std::uint64_t ord = meta & ((1u << 30) - 1);
        // Ordinals are tagged modulo 2^30; find the live slot.
        for (NbSlot& s : nbq_) {
            if (s.used && (s.ordinal & ((1u << 30) - 1)) == ord) {
                s.predicted_enter = !info.actual_taken;
                break;
            }
        }
        ++*ctr_visited_patches_;
    } else if (info.branch_pc == pc_br_nbloop_ && kind == kMetaLoop) {
        // Should only happen for garbage beyond the frontier end; the
        // recorded direction is fixed and the per-level ROI squash will
        // resynchronize. Count it for visibility.
        logSetDirAt(pos, info.actual_taken);
        ++*ctr_loop_patches_;
    }
}

} // namespace pfm
