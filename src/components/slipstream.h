/**
 * @file
 * Simplified Slipstream 2.0 comparator for Figure 2 (see Section 1.1 and
 * the DESIGN.md substitution notes). The leading thread's automated branch
 * pre-execution is modeled as the PFM streaming machinery restricted the
 * way the paper describes Slipstream's limits on these ROIs:
 *
 *  - astar: only branch 1 (waymap) is pre-executed — branch 2 (maparp) is
 *    inside the pruned control-dependent region and stays on the core
 *    predictor; the loop-carried memory dependence (the fillnum store) is
 *    NOT tracked, so conflicting in-flight visits pre-execute incorrectly
 *    (we model the paper's optimized variant: a local squash rather than a
 *    leading-thread restart).
 *  - bfs: only the visited branch is pre-executed, without duplicate-V
 *    store inference, and trip-count (loop-branch) streaming is absent.
 */

#ifndef PFM_COMPONENTS_SLIPSTREAM_H
#define PFM_COMPONENTS_SLIPSTREAM_H

#include "pfm/pfm_system.h"
#include "workloads/workload.h"

namespace pfm {

void attachAstarSlipstream(PfmSystem& sys, const Workload& w);
void attachBfsSlipstream(PfmSystem& sys, const Workload& w);

} // namespace pfm

#endif // PFM_COMPONENTS_SLIPSTREAM_H
