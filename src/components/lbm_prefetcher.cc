#include "components/lbm_prefetcher.h"

#include "components/prefetch_engine.h"

namespace pfm {

void
attachLbmPrefetcher(PfmSystem& sys, const Workload& w)
{
    std::uint64_t cells = w.metaVal("cells");
    auto plane = static_cast<std::int64_t>(w.metaVal("plane_bytes"));
    auto row = static_cast<std::int64_t>(w.metaVal("row_bytes"));

    PrefetchStream s;
    s.name = "cluster";
    s.base = w.dataAddr("src");
    s.levels = {{1u << 20, 0}, {cells, 8}};
    s.unit_elems = 8; // one line of cells per unit
    s.events_per_unit = 8.0;
    s.set_offsets = {0, row, -row, plane, -plane};
    s.skip_if_full = true; // push the cluster as a set, or not at all
    s.feedback_pc = w.pc("del0");

    FsmPrefetcher::attach(sys, w, {s});
}

} // namespace pfm
