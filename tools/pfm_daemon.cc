/**
 * @file
 * Sim-as-a-service daemon binary: bind a Unix-domain socket, serve sweep
 * requests (pfm_client or the framing protocol directly), shut down
 * cleanly on SIGINT/SIGTERM — cancelling in-flight legs, joining every
 * worker, deleting cache images and unlinking the socket.
 *
 * Usage:
 *   pfm_daemon --socket=/tmp/pfm.sock [--jobs=N] [--cache-budget-mb=M]
 *              [--cache-dir=DIR] [--keep-cache]
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "common/log.h"
#include "sim/daemon.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

[[noreturn]] void
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s --socket=PATH [--jobs=N] [--cache-budget-mb=M]"
                 " [--cache-dir=DIR] [--keep-cache]\n",
                 argv0);
    std::exit(2);
}

unsigned long long
parseCount(const char* argv0, const std::string& arg, const char* value)
{
    char* end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(value, &end, 0);
    if (*value == '\0' || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "bad number in '%s'\n", arg.c_str());
        usage(argv0);
    }
    return v;
}

} // namespace

int
main(int argc, char** argv)
{
    pfm::DaemonOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--socket=", 0) == 0) {
            opt.socket_path = arg.substr(9);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opt.jobs = static_cast<unsigned>(
                parseCount(argv[0], arg, arg.c_str() + 7));
        } else if (arg.rfind("--cache-budget-mb=", 0) == 0) {
            opt.cache_budget_bytes =
                parseCount(argv[0], arg, arg.c_str() + 18) << 20;
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            opt.cache_dir = arg.substr(12);
        } else if (arg == "--keep-cache") {
            opt.keep_cache_files = true;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
            usage(argv[0]);
        }
    }
    if (opt.socket_path.empty())
        usage(argv[0]);

    struct sigaction sa{};
    sa.sa_handler = onSignal;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);

    pfm::DaemonServer server(opt);
    server.start();
    while (!g_stop) {
        struct timespec ts{0, 100'000'000};
        nanosleep(&ts, nullptr);
    }
    pfm_inform("daemon: signal received, shutting down");
    server.stop();
    return 0;
}
