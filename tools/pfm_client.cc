/**
 * @file
 * CLI client for the sim daemon (tools/pfm_daemon.cc). Speaks the framing
 * protocol of DESIGN.md "Daemon protocol":
 *
 *   pfm_client --socket=PATH ping
 *   pfm_client --socket=PATH stats
 *   pfm_client --socket=PATH sweep --workload=W [--component=C]
 *              [--warmup=N] [--instructions=N] [--fastfwd=on|off]
 *              --leg=TOKENS [--leg=TOKENS ...]
 *
 * Rows stream to stdout as they complete (one JSON object per line, the
 * deterministic fields of the equivalent BENCH row); progress and errors
 * go to stderr. Exit code: 0 all legs ok, 1 some legs errored, 2 protocol
 * or connection failure.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/framing.h"

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: pfm_client --socket=PATH ping|stats\n"
        "       pfm_client --socket=PATH sweep --workload=W"
        " [--component=C]\n"
        "                  [--warmup=N] [--instructions=N]"
        " [--fastfwd=on|off]\n"
        "                  --leg=TOKENS [--leg=TOKENS ...]\n");
    std::exit(2);
}

int
connectTo(const std::string& path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "pfm_client: bad socket path '%s'\n",
                     path.c_str());
        std::exit(2);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)) != 0) {
        std::fprintf(stderr, "pfm_client: cannot connect to '%s': %s\n",
                     path.c_str(), std::strerror(errno));
        std::exit(2);
    }
    return fd;
}

/** One-frame request/one-frame reply commands (ping, stats). */
int
simpleCommand(const std::string& socket_path, const std::string& cmd)
{
    int fd = connectTo(socket_path);
    if (!pfm::framing::writeFrame(fd, cmd)) {
        std::fprintf(stderr, "pfm_client: write failed\n");
        return 2;
    }
    std::string reply;
    if (pfm::framing::readFrame(fd, reply, 10'000) !=
        pfm::framing::ReadResult::kOk) {
        std::fprintf(stderr, "pfm_client: no reply\n");
        ::close(fd);
        return 2;
    }
    ::close(fd);
    if (reply.rfind("ok ", 0) == 0) {
        std::printf("%s\n", reply.c_str() + 3);
        return 0;
    }
    std::fprintf(stderr, "pfm_client: %s\n", reply.c_str());
    return 2;
}

int
sweepCommand(const std::string& socket_path, const std::string& request)
{
    int fd = connectTo(socket_path);
    if (!pfm::framing::writeFrame(fd, request)) {
        std::fprintf(stderr, "pfm_client: write failed\n");
        return 2;
    }

    std::size_t errors = 0;
    for (;;) {
        std::string frame;
        pfm::framing::ReadResult r =
            pfm::framing::readFrame(fd, frame, /*timeout_ms=*/-1);
        if (r != pfm::framing::ReadResult::kOk) {
            std::fprintf(stderr,
                         "pfm_client: connection closed before done\n");
            ::close(fd);
            return 2;
        }
        if (frame.rfind("row ", 0) == 0) {
            // "row <index> <wall_ms> <json>"
            std::size_t sp1 = frame.find(' ', 4);
            std::size_t sp2 =
                sp1 == std::string::npos ? sp1 : frame.find(' ', sp1 + 1);
            if (sp2 == std::string::npos) {
                std::fprintf(stderr, "pfm_client: malformed row frame\n");
                ::close(fd);
                return 2;
            }
            std::fprintf(stderr, "leg %.*s done in %.*s ms\n",
                         static_cast<int>(sp1 - 4), frame.c_str() + 4,
                         static_cast<int>(sp2 - sp1 - 1),
                         frame.c_str() + sp1 + 1);
            std::printf("%s\n", frame.c_str() + sp2 + 1);
            std::fflush(stdout);
        } else if (frame.rfind("legerr ", 0) == 0) {
            ++errors;
            std::fprintf(stderr, "pfm_client: %s\n", frame.c_str());
        } else if (frame.rfind("done", 0) == 0) {
            std::fprintf(stderr, "pfm_client: %s\n", frame.c_str());
            ::close(fd);
            return errors ? 1 : 0;
        } else if (frame.rfind("err ", 0) == 0) {
            std::fprintf(stderr, "pfm_client: %s\n", frame.c_str());
            ::close(fd);
            return 2;
        } else {
            std::fprintf(stderr, "pfm_client: unexpected frame '%s'\n",
                         frame.c_str());
            ::close(fd);
            return 2;
        }
    }
}

} // namespace

int
main(int argc, char** argv)
{
    std::string socket_path;
    std::string command;
    std::vector<std::string> request_lines;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--socket=", 0) == 0) {
            socket_path = arg.substr(9);
        } else if (arg == "ping" || arg == "stats" || arg == "sweep") {
            if (!command.empty())
                usage();
            command = arg;
        } else if (arg.rfind("--workload=", 0) == 0) {
            request_lines.push_back("workload=" + arg.substr(11));
        } else if (arg.rfind("--component=", 0) == 0) {
            request_lines.push_back("component=" + arg.substr(12));
        } else if (arg.rfind("--warmup=", 0) == 0) {
            request_lines.push_back("warmup=" + arg.substr(9));
        } else if (arg.rfind("--instructions=", 0) == 0) {
            request_lines.push_back("instructions=" + arg.substr(15));
        } else if (arg.rfind("--fastfwd=", 0) == 0) {
            request_lines.push_back("fastfwd=" + arg.substr(10));
        } else if (arg.rfind("--leg=", 0) == 0) {
            request_lines.push_back("leg=" + arg.substr(6));
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
            usage();
        }
    }
    if (socket_path.empty() || command.empty())
        usage();

    if (command == "ping" || command == "stats")
        return simpleCommand(socket_path, command);

    std::string request = "sweep";
    for (const std::string& line : request_lines)
        request += "\n" + line;
    return sweepCommand(socket_path, request);
}
