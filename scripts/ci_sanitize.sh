#!/bin/sh
# Sanitizer leg for CI: build with -DPFM_SANITIZE=ON (ASan + UBSan) and
# run the daemon/concurrency and checkpoint-store tests under it. The
# daemon is the one part of the codebase with real thread/descriptor
# lifetime hazards — leaked mmaps on checkpoint error paths,
# double-fclose, worker threads outliving stop() — and the store's LZ
# codec and blob loader are raw byte-twiddling over attacker-shaped
# (corrupt) input: exactly what the instrumented build catches and the
# plain build cannot. The PMP suite rides along: its rotate/merge bit
# arithmetic and the reference-model lockstep are cheap and exactly the
# code UBSan pays off on (shift widths, popcount-driven indexing). The
# trace-frontend suite joins for the same reason: block (de)compression,
# CRC framing, and record decoding over deliberately corrupted trace
# files are untrusted-input byte-twiddling.
#
# Usage: scripts/ci_sanitize.sh [build-dir]   (default: build-sanitize)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . -DPFM_SANITIZE=ON
cmake --build "$BUILD_DIR" -j"$(nproc)" --target pfm_daemon_tests \
    pfm_ckpt_store_tests pfm_pmp_tests pfm_trace_tests pfm_daemon \
    pfm_client
(cd "$BUILD_DIR" && ctest -L 'daemon|ckptstore|pmp|trace' --output-on-failure -j2)
