/**
 * @file
 * CI smoke test for the sweep infrastructure: a tiny sweep (reduced
 * instruction budget) executed twice through SweepRunner — serially and
 * with a worker pool — verifying the parallel results are bit-identical
 * to serial execution. Exits nonzero on any mismatch, so it can run
 * under ctest on every build.
 */

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"

using namespace pfm;

namespace {

SweepSpec
smokeSpec()
{
    SweepSpec spec;
    auto tiny = [](const char* wl, const char* component,
                   const char* tokens) {
        SimOptions o;
        o.workload = wl;
        o.component = component;
        o.max_instructions = 30'000;
        o.warmup_instructions = 5'000;
        if (tokens && *tokens)
            applyTokens(o, tokens);
        return o;
    };
    RunHandle abase = spec.add("astar/base", tiny("astar", "none", ""));
    spec.add("astar/pfm",
             tiny("astar", "auto", "clk4_w4 delay0 queue32 portALL"),
             abase);
    RunHandle bbase =
        spec.add("bfs/base", tiny("bfs-roads", "none", ""));
    spec.add("bfs/pfm",
             tiny("bfs-roads", "auto", "clk4_w4 delay0 queue32 portALL"),
             bbase);
    return spec;
}

bool
sameResult(const SimResult& a, const SimResult& b)
{
    return a.cycles == b.cycles && a.instructions == b.instructions &&
           a.ipc == b.ipc && a.mpki == b.mpki &&
           a.rst_hit_pct == b.rst_hit_pct &&
           a.fst_hit_pct == b.fst_hit_pct && a.finished == b.finished;
}

} // namespace

int
main()
{
    SweepSpec spec = smokeSpec();

    SweepRunner serial(1);
    serial.run(spec);
    SweepRunner parallel(4);
    parallel.run(spec);

    int mismatches = 0;
    for (std::size_t i = 0; i < spec.size(); ++i) {
        const SimResult& s = serial.results()[i].sim;
        const SimResult& p = parallel.results()[i].sim;
        if (!sameResult(s, p)) {
            std::fprintf(stderr,
                         "bench_smoke: '%s' diverged (serial %llu cycles, "
                         "jobs=4 %llu cycles)\n",
                         spec.runs()[i].label.c_str(),
                         (unsigned long long)s.cycles,
                         (unsigned long long)p.cycles);
            ++mismatches;
        }
        std::printf("  %-24s ipc %.4f  %7.1f ms serial, %7.1f ms jobs=4\n",
                    spec.runs()[i].label.c_str(), s.ipc,
                    serial.results()[i].wall_ms,
                    parallel.results()[i].wall_ms);
    }
    std::printf("bench_smoke: %zu configs, jobs=1 %.1f ms, jobs=4 %.1f ms%s\n",
                spec.size(), serial.totalWallMs(), parallel.totalWallMs(),
                mismatches ? " [MISMATCH]" : "");

    emitBenchJson("smoke", spec, parallel);
    return mismatches ? 1 : 0;
}
