/**
 * @file
 * Table 2: percentage of retired instructions in the ROI hitting the RST
 * and of fetched instructions hitting the FST, for astar.
 */

#include "bench_util.h"

using namespace pfm;

int
main(int argc, char** argv)
{
    SweepSpec spec;
    RunHandle run = spec.add(
        "astar/clk4_w4",
        benchOptions("astar", "auto", "clk4_w4 delay0 queue32 portALL"));

    SweepRunner runner = benchRunner(argc, argv);
    runner.run(spec);
    const SimResult& r = runner.sim(run);

    reportHeader("Table 2: astar FST and RST snoop percentages");
    reportRowVs("% retired in ROI hit RST", r.rst_hit_pct, 20.3);
    reportRowVs("% fetched in ROI hit FST", r.fst_hit_pct, 15.5);

    emitBenchJson("table2", spec, runner);
    return 0;
}
