/**
 * @file
 * Table 2: percentage of retired instructions in the ROI hitting the RST
 * and of fetched instructions hitting the FST, for astar.
 */

#include "bench_util.h"

using namespace pfm;

int
main()
{
    reportHeader("Table 2: astar FST and RST snoop percentages");
    SimResult r = runSim(
        benchOptions("astar", "auto", "clk4_w4 delay0 queue32 portALL"));
    reportRowVs("% retired in ROI hit RST", r.rst_hit_pct, 20.3);
    reportRowVs("% fetched in ROI hit FST", r.fst_hit_pct, 15.5);
    return 0;
}
