/**
 * @file
 * Figure 13: bfs sensitivity to delayD, queueQ, portP (all with 64-entry
 * frontier/begin-address/trip-count/neighbor queues).
 */

#include "bench_util.h"

using namespace pfm;

int
main(int argc, char** argv)
{
    const char* delays[] = {"delay0", "delay2", "delay4", "delay8"};
    const char* queues[] = {"queue8", "queue16", "queue32", "queue64"};
    const char* ports[] = {"portALL", "portLS", "portLS1"};

    SweepSpec spec;
    RunHandle base = spec.add("base", benchOptions("bfs-roads", "none"));
    std::vector<RunHandle> drun, qrun, prun;
    for (const char* d : delays)
        drun.push_back(spec.add(
            d,
            benchOptions("bfs-roads", "auto",
                         std::string("clk4_w4 queue32 portALL ") + d),
            base));
    for (const char* q : queues)
        qrun.push_back(spec.add(
            q,
            benchOptions("bfs-roads", "auto",
                         std::string("clk4_w4 delay4 portALL ") + q),
            base));
    for (const char* p : ports)
        prun.push_back(spec.add(
            p,
            benchOptions("bfs-roads", "auto",
                         std::string("clk4_w4 delay4 queue32 ") + p),
            base));

    SweepRunner runner = benchRunner(argc, argv);
    runner.run(spec);

    reportHeader("Figure 13a: bfs vs delayD (clk4_w4 queue32 portALL)");
    for (size_t i = 0; i < drun.size(); ++i)
        reportRow(delays[i],
                  speedupPct(runner.sim(base), runner.sim(drun[i])));
    reportNote("paper: low sensitivity to D");

    reportHeader("Figure 13b: bfs vs queueQ (clk4_w4 delay4 portALL)");
    for (size_t i = 0; i < qrun.size(); ++i)
        reportRow(queues[i],
                  speedupPct(runner.sim(base), runner.sim(qrun[i])));
    reportNote("paper: low sensitivity to Q");
    for (size_t i = 0; i < qrun.size(); ++i)
        reportPortStats(queues[i], runner.sim(qrun[i]).ports);

    reportHeader("Figure 13c: bfs vs portP (clk4_w4 delay4 queue32)");
    for (size_t i = 0; i < prun.size(); ++i)
        reportRow(ports[i],
                  speedupPct(runner.sim(base), runner.sim(prun[i])));
    reportNote("paper: low sensitivity to P");

    emitBenchJson("fig13", spec, runner);
    return 0;
}
