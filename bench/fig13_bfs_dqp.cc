/**
 * @file
 * Figure 13: bfs sensitivity to delayD, queueQ, portP (all with 64-entry
 * frontier/begin-address/trip-count/neighbor queues).
 */

#include "bench_util.h"

using namespace pfm;

int
main()
{
    SimResult base = runSim(benchOptions("bfs-roads", "none"));

    reportHeader("Figure 13a: bfs vs delayD (clk4_w4 queue32 portALL)");
    for (const char* d : {"delay0", "delay2", "delay4", "delay8"}) {
        SimResult res = runSim(benchOptions(
            "bfs-roads", "auto",
            std::string("clk4_w4 queue32 portALL ") + d));
        reportRow(d, speedupPct(base, res));
    }
    reportNote("paper: low sensitivity to D");

    reportHeader("Figure 13b: bfs vs queueQ (clk4_w4 delay4 portALL)");
    for (const char* q : {"queue8", "queue16", "queue32", "queue64"}) {
        SimResult res = runSim(benchOptions(
            "bfs-roads", "auto",
            std::string("clk4_w4 delay4 portALL ") + q));
        reportRow(q, speedupPct(base, res));
    }
    reportNote("paper: low sensitivity to Q");

    reportHeader("Figure 13c: bfs vs portP (clk4_w4 delay4 queue32)");
    for (const char* p : {"portALL", "portLS", "portLS1"}) {
        SimResult res = runSim(benchOptions(
            "bfs-roads", "auto",
            std::string("clk4_w4 delay4 queue32 ") + p));
        reportRow(p, speedupPct(base, res));
    }
    reportNote("paper: low sensitivity to P");
    return 0;
}
