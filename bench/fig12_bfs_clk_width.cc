/**
 * @file
 * Figure 12: bfs speedups — perfBP / perfD$ / both, then the custom
 * component across clkC_wW points (delay0 queue32 portALL, 64-entry
 * queues). Roads input headline; Youtube also reported.
 */

#include "bench_util.h"

using namespace pfm;

int
main()
{
    reportHeader("Figure 12: bfs (Roads) speedups");
    SimResult base = runSim(benchOptions("bfs-roads", "none"));
    reportNote("baseline MPKI " + std::to_string(base.mpki) +
               " (paper: 19.1)");

    SimResult perf_bp =
        runSim(benchOptions("bfs-roads", "none", "perfBP"));
    SimResult perf_ds =
        runSim(benchOptions("bfs-roads", "none", "perfD$"));
    SimResult perf_both =
        runSim(benchOptions("bfs-roads", "none", "perfBP perfD$"));
    reportRowVs("perfBP", speedupPct(base, perf_bp), 11.0);
    reportRowVs("perfD$", speedupPct(base, perf_ds), 152.0);
    reportRowVs("perfBP+D$", speedupPct(base, perf_both), 426.0);

    struct Ref {
        const char* cfg;
        double paper; // approximate bar heights; 125% is the max
    };
    for (const Ref& r :
         {Ref{"clk8_w1", 0.0}, Ref{"clk4_w1", 30.0}, Ref{"clk4_w2", 110.0},
          Ref{"clk4_w4", 125.0}, Ref{"clk2_w4", 125.0},
          Ref{"clk1_w4", 125.0}}) {
        SimResult res = runSim(benchOptions(
            "bfs-roads", "auto",
            std::string(r.cfg) + " delay0 queue32 portALL"));
        if (r.paper > 100.0)
            reportRowVs(r.cfg, speedupPct(base, res), r.paper);
        else
            reportRow(r.cfg, speedupPct(base, res));
    }

    reportHeader("Figure 12 (Youtube input)");
    SimResult ybase = runSim(benchOptions("bfs-youtube", "none"));
    SimResult ypfm = runSim(benchOptions(
        "bfs-youtube", "auto", "clk4_w4 delay0 queue32 portALL"));
    reportRow("clk4_w4", speedupPct(ybase, ypfm));
    return 0;
}
