/**
 * @file
 * Figure 12: bfs speedups — perfBP / perfD$ / both, then the custom
 * component across clkC_wW points (delay0 queue32 portALL, 64-entry
 * queues). Roads input headline; Youtube also reported.
 */

#include "bench_util.h"

using namespace pfm;

int
main(int argc, char** argv)
{
    struct Ref {
        const char* cfg;
        double paper; // approximate bar heights; 125% is the max
    };
    const Ref refs[] = {{"clk8_w1", 0.0},   {"clk4_w1", 30.0},
                        {"clk4_w2", 110.0}, {"clk4_w4", 125.0},
                        {"clk2_w4", 125.0}, {"clk1_w4", 125.0}};

    SweepSpec spec;
    RunHandle base = spec.add("base", benchOptions("bfs-roads", "none"));
    RunHandle perf_bp = spec.add(
        "perfBP", benchOptions("bfs-roads", "none", "perfBP"), base);
    RunHandle perf_ds = spec.add(
        "perfD$", benchOptions("bfs-roads", "none", "perfD$"), base);
    RunHandle perf_both = spec.add(
        "perfBP+D$", benchOptions("bfs-roads", "none", "perfBP perfD$"),
        base);
    std::vector<RunHandle> runs;
    for (const Ref& r : refs)
        runs.push_back(spec.add(
            r.cfg,
            benchOptions("bfs-roads", "auto",
                         std::string(r.cfg) + " delay0 queue32 portALL"),
            base));
    RunHandle ybase =
        spec.add("youtube/base", benchOptions("bfs-youtube", "none"));
    RunHandle ypfm = spec.add(
        "youtube/clk4_w4",
        benchOptions("bfs-youtube", "auto",
                     "clk4_w4 delay0 queue32 portALL"),
        ybase);

    SweepRunner runner = benchRunner(argc, argv);
    runner.run(spec);

    reportHeader("Figure 12: bfs (Roads) speedups");
    reportNote("baseline MPKI " + std::to_string(runner.sim(base).mpki) +
               " (paper: 19.1)");
    reportRowVs("perfBP", speedupPct(runner.sim(base), runner.sim(perf_bp)),
                11.0);
    reportRowVs("perfD$", speedupPct(runner.sim(base), runner.sim(perf_ds)),
                152.0);
    reportRowVs("perfBP+D$",
                speedupPct(runner.sim(base), runner.sim(perf_both)), 426.0);

    for (size_t i = 0; i < runs.size(); ++i) {
        const Ref& r = refs[i];
        double speedup = speedupPct(runner.sim(base), runner.sim(runs[i]));
        if (r.paper > 100.0)
            reportRowVs(r.cfg, speedup, r.paper);
        else
            reportRow(r.cfg, speedup);
    }

    reportHeader("Figure 12 (Youtube input)");
    reportRow("clk4_w4", speedupPct(runner.sim(ybase), runner.sim(ypfm)));

    emitBenchJson("fig12", spec, runner);
    return 0;
}
