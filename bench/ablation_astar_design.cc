/**
 * @file
 * Beyond the paper: ablation of the astar custom predictor's design
 * ingredients, quantifying each piece's contribution:
 *
 *  - full design (load-based, CAM inference, both branches)
 *  - no index1-CAM store inference (Section 4.1.2's key mechanism)
 *  - waymap branch only (Slipstream-like restriction)
 *  - astar-alt (EXACT-style table mimicry instead of loads)
 *  - non-stalling Fetch Agent (Section 2.4's alternative sketch)
 */

#include "bench_util.h"

using namespace pfm;

int
main(int argc, char** argv)
{
    const char* cfg = "clk4_w4 delay4 queue32 portLS1";
    const Cycle intervals[] = {Cycle{2'000'000}, Cycle{500'000},
                               Cycle{150'000}};

    SweepSpec spec;
    RunHandle base = spec.add("base", benchOptions("astar", "none"));
    RunHandle full =
        spec.add("full design", benchOptions("astar", "auto", cfg), base);
    // Disable the index1 CAM: in-flight visited stores are no longer
    // inferred, so revisited cells within the speculative scope
    // mispredict (the slipstream failure mode, Section 1.1).
    RunHandle slip = spec.add("slipstream",
                              benchOptions("astar", "slipstream", cfg),
                              base);
    RunHandle alt =
        spec.add("astar-alt", benchOptions("astar", "alt", cfg), base);
    RunHandle nonstall = spec.add(
        "nonstall",
        benchOptions("astar", "auto", std::string(cfg) + " nonstall"),
        base);
    // Narrow the Load Agent's missed-load buffer: the custom predictor's
    // MLP collapses when missed loads cannot be parked.
    SimOptions mlb_opt = benchOptions("astar", "auto", cfg);
    mlb_opt.pfm.mlb_entries = 4;
    RunHandle mlb = spec.add("mlb4", std::move(mlb_opt), base);

    std::vector<RunHandle> ctx_runs;
    for (Cycle interval : intervals) {
        SimOptions o = benchOptions("astar", "auto", cfg);
        o.pfm.context_switch_interval = interval;
        ctx_runs.push_back(
            spec.add("ctx" + std::to_string(interval), std::move(o), base));
    }

    SweepRunner runner = benchRunner(argc, argv);
    runner.run(spec);

    reportHeader("Ablation: astar custom-predictor design ingredients "
                 "(clk4_w4 delay4 queue32 portLS1)");
    reportNote("baseline IPC " + std::to_string(runner.sim(base).ipc) +
               ", MPKI " + std::to_string(runner.sim(base).mpki));
    reportRow("full design", speedupPct(runner.sim(base), runner.sim(full)));
    reportRow("no CAM + waymap-only (slipstream)",
              speedupPct(runner.sim(base), runner.sim(slip)));
    reportRow("astar-alt (table mimicry)",
              speedupPct(runner.sim(base), runner.sim(alt)));
    reportNote("paper reports ~125% for astar-alt; table mimicry is "
               "sensitive to dataset size (Section 5 footnote)");
    reportRow("non-stalling Fetch Agent",
              speedupPct(runner.sim(base), runner.sim(nonstall)));
    reportNote("without stalling, fetch never waits for the component "
               "and the stream is mostly core-predicted - the reason "
               "the paper's primary design stalls");
    reportRow("4-entry missed-load buffer",
              speedupPct(runner.sim(base), runner.sim(mlb)));

    reportHeader("Ablation: context-switch teardown (Section 2.4 "
                 "isolation; reconfig = 100k cycles)");
    for (size_t i = 0; i < ctx_runs.size(); ++i)
        reportRow("switch every " + std::to_string(intervals[i] / 1000) +
                      "k cycles",
                  speedupPct(runner.sim(base), runner.sim(ctx_runs[i])));
    reportNote("frequent context switches amortize poorly against the "
               "bitstream reload, bounding PFM to long-running contexts");

    emitBenchJson("ablation_astar", spec, runner);
    return 0;
}
