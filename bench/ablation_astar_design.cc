/**
 * @file
 * Beyond the paper: ablation of the astar custom predictor's design
 * ingredients, quantifying each piece's contribution:
 *
 *  - full design (load-based, CAM inference, both branches)
 *  - no index1-CAM store inference (Section 4.1.2's key mechanism)
 *  - waymap branch only (Slipstream-like restriction)
 *  - astar-alt (EXACT-style table mimicry instead of loads)
 *  - non-stalling Fetch Agent (Section 2.4's alternative sketch)
 */

#include "bench_util.h"

using namespace pfm;

int
main()
{
    reportHeader("Ablation: astar custom-predictor design ingredients "
                 "(clk4_w4 delay4 queue32 portLS1)");

    SimResult base = runSim(benchOptions("astar", "none"));
    reportNote("baseline IPC " + std::to_string(base.ipc) + ", MPKI " +
               std::to_string(base.mpki));

    const char* cfg = "clk4_w4 delay4 queue32 portLS1";

    SimResult full = runSim(benchOptions("astar", "auto", cfg));
    reportRow("full design", speedupPct(base, full));

    {
        // Disable the index1 CAM: in-flight visited stores are no longer
        // inferred, so revisited cells within the speculative scope
        // mispredict (the slipstream failure mode, Section 1.1).
        SimOptions o = benchOptions("astar", "slipstream", cfg);
        SimResult r = runSim(o);
        reportRow("no CAM + waymap-only (slipstream)", speedupPct(base, r));
    }

    {
        SimOptions o = benchOptions("astar", "alt", cfg);
        SimResult r = runSim(o);
        reportRow("astar-alt (table mimicry)", speedupPct(base, r));
        reportNote("paper reports ~125% for astar-alt; table mimicry is "
                   "sensitive to dataset size (Section 5 footnote)");
    }

    {
        SimOptions o = benchOptions("astar", "auto",
                                    std::string(cfg) + " nonstall");
        SimResult r = runSim(o);
        reportRow("non-stalling Fetch Agent", speedupPct(base, r));
        reportNote("without stalling, fetch never waits for the component "
                   "and the stream is mostly core-predicted - the reason "
                   "the paper's primary design stalls");
    }

    {
        // Narrow the Load Agent's missed-load buffer: the custom
        // predictor's MLP collapses when missed loads cannot be parked.
        SimOptions o = benchOptions("astar", "auto", cfg);
        o.pfm.mlb_entries = 4;
        SimResult r = runSim(o);
        reportRow("4-entry missed-load buffer", speedupPct(base, r));
    }

    reportHeader("Ablation: context-switch teardown (Section 2.4 "
                 "isolation; reconfig = 100k cycles)");
    for (Cycle interval : {Cycle{2'000'000}, Cycle{500'000},
                           Cycle{150'000}}) {
        SimOptions o = benchOptions("astar", "auto", cfg);
        o.pfm.context_switch_interval = interval;
        SimResult r = runSim(o);
        reportRow("switch every " + std::to_string(interval / 1000) +
                      "k cycles",
                  speedupPct(base, r));
    }
    reportNote("frequent context switches amortize poorly against the "
               "bitstream reload, bounding PFM to long-running contexts");

    return 0;
}
