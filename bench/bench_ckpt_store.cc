/**
 * @file
 * Checkpoint-store harness: the fig17-style farm pattern (N measurement
 * configs, each checkpointing its warmup to its own path) run twice —
 * once with plain whole-image checkpoints (the v2-equivalent raw mmap
 * path) and once through the compressed content-addressed store. Reports
 * bytes on disk, save and restore wall time, and the dedup ratio; lands
 * in BENCH_ckpt_store.json with size_bytes/restore_ms columns perf_diff
 * tracks informationally.
 *
 * Hard failures (exit 1), because they are correctness claims, not perf:
 *  - a leg restored from the store differs from the same leg restored
 *    from a plain image;
 *  - the store fails the ROADMAP's >= 5x byte reduction on this sweep.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "bench_util.h"
#include "sim/checkpoint.h"

using namespace pfm;

namespace {

struct Cfg {
    const char* tokens;
    std::uint64_t warmup; ///< two distinct lengths => two unique images
};

std::uint64_t
fileBytes(const std::string& path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0
        ? static_cast<std::uint64_t>(st.st_size)
        : 0;
}

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char** argv)
{
    (void)argc;
    (void)argv;
    const std::uint64_t budget = defaultInstructionBudget();

    // Eight lbm prefetcher configs over two warmup lengths: the per-config
    // save pattern a 1000-config farm scales up. Within one warmup length
    // the bare warmup state is identical, so the store should keep one
    // blob set per length plus a tiny manifest per config.
    const Cfg kConfigs[] = {
        {"clk4_w4 delay0", budget / 10},
        {"clk4_w4 delay8", budget / 10},
        {"clk8_w1 delay0", budget / 10},
        {"clk8_w1 delay8", budget / 10},
        {"clk4_w4 delay0 queue8", budget / 5},
        {"clk4_w4 delay0 queue32", budget / 5},
        {"clk8_w1 delay8 portLS1", budget / 5},
        {"clk4_w4 delay0 portALL", budget / 5},
    };
    const std::size_t kN = sizeof kConfigs / sizeof kConfigs[0];

    std::string dir = ".";
    if (const char* env = std::getenv("PFM_CKPT_DIR"))
        dir = env;
    const std::string scratch =
        dir + "/pfm_ckpt_bench_" +
        std::to_string(static_cast<unsigned long>(::getpid()));
    ::mkdir(scratch.c_str(), 0755);

    auto ckptPath = [&](bool store, std::size_t i) {
        return scratch + (store ? "/store_" : "/plain_") +
               std::to_string(i) + ".ckpt";
    };

    // Phase 1: per-config warmup saves, plain then store.
    double save_ms[2] = {0, 0};
    std::uint64_t size_bytes[2] = {0, 0};
    for (int store = 0; store < 2; ++store) {
        auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < kN; ++i) {
            SimOptions o = benchOptions("lbm", "none");
            o.warmup_instructions = kConfigs[i].warmup;
            o.max_instructions = 0;
            o.checkpoint_save = ckptPath(store, i);
            if (store)
                o.ckpt_store = "store_blobs";
            Simulator sim(o);
            sim.run();
        }
        save_ms[store] = msSince(t0);
        for (std::size_t i = 0; i < kN; ++i)
            size_bytes[store] += fileBytes(ckptPath(store, i));
    }
    size_bytes[1] += ckptStoreDirBytes(scratch + "/store_blobs");

    // Phase 2: restore every measurement leg from both layouts. Identity
    // between the two restores is the whole point of the store.
    double restore_ms[2] = {0, 0};
    std::vector<SimResult> results[2];
    for (int store = 0; store < 2; ++store) {
        auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < kN; ++i) {
            SimOptions o =
                benchOptions("lbm", "auto", kConfigs[i].tokens);
            o.defer_component = true;
            o.warmup_instructions = kConfigs[i].warmup;
            o.checkpoint_load = ckptPath(store, i);
            Simulator sim(o);
            results[store].push_back(sim.run());
        }
        restore_ms[store] = msSince(t0);
    }

    int failures = 0;
    for (std::size_t i = 0; i < kN; ++i) {
        const SimResult& a = results[0][i];
        const SimResult& b = results[1][i];
        if (a.cycles != b.cycles || a.instructions != b.instructions ||
            a.ipc != b.ipc || a.mpki != b.mpki) {
            std::fprintf(stderr,
                         "FAIL: config '%s' diverged between plain and "
                         "store restore (cycles %llu vs %llu)\n",
                         kConfigs[i].tokens,
                         static_cast<unsigned long long>(a.cycles),
                         static_cast<unsigned long long>(b.cycles));
            ++failures;
        }
    }

    const double dedup_ratio =
        size_bytes[1] ? static_cast<double>(size_bytes[0]) /
                            static_cast<double>(size_bytes[1])
                      : 0;
    if (dedup_ratio < 5.0) {
        std::fprintf(stderr,
                     "FAIL: store used %llu bytes vs %llu plain — %.2fx, "
                     "below the 5x floor\n",
                     static_cast<unsigned long long>(size_bytes[1]),
                     static_cast<unsigned long long>(size_bytes[0]),
                     dedup_ratio);
        ++failures;
    }

    reportHeader("Checkpoint store: bytes + save/restore wall time");
    reportRow("plain_bytes", static_cast<double>(size_bytes[0]) / 1024,
              " KiB");
    reportRow("store_bytes", static_cast<double>(size_bytes[1]) / 1024,
              " KiB");
    reportRow("dedup_ratio", dedup_ratio, "x");
    reportRow("save_plain", save_ms[0], " ms");
    reportRow("save_store", save_ms[1], " ms");
    reportRow("restore_plain", restore_ms[0], " ms");
    reportRow("restore_store", restore_ms[1], " ms");
    if (restore_ms[1] > 2.0 * restore_ms[0])
        // Informational: wall time is machine-dependent, so the 2x goal
        // is watched via the perf baseline rather than a hard exit here.
        reportNote("note: store restore exceeded 2x the mmap path");

    std::string json_dir = ".";
    if (const char* env = std::getenv("PFM_BENCH_JSON_DIR"))
        json_dir = env;
    const std::string json_path = json_dir + "/BENCH_ckpt_store.json";
    std::ofstream os(json_path);
    if (os) {
        os << "{\n  \"bench\": \"ckpt_store\",\n";
        os << "  \"configs\": " << kN << ",\n";
        os << "  \"dedup_ratio\": " << dedup_ratio << ",\n";
        os << "  \"total_wall_ms\": "
           << save_ms[0] + save_ms[1] + restore_ms[0] + restore_ms[1]
           << ",\n  \"rows\": [\n";
        os << "    {\"label\": \"save_plain\", \"wall_ms\": " << save_ms[0]
           << ", \"size_bytes\": " << size_bytes[0] << "},\n";
        os << "    {\"label\": \"save_store\", \"wall_ms\": " << save_ms[1]
           << ", \"size_bytes\": " << size_bytes[1] << "},\n";
        os << "    {\"label\": \"restore_plain\", \"wall_ms\": "
           << restore_ms[0] << ", \"restore_ms\": " << restore_ms[0] / kN
           << "},\n";
        os << "    {\"label\": \"restore_store\", \"wall_ms\": "
           << restore_ms[1] << ", \"restore_ms\": " << restore_ms[1] / kN
           << "}\n  ]\n}\n";
    }

    // Scratch cleanup: manifests, blobs, then the directory itself.
    for (int store = 0; store < 2; ++store)
        for (std::size_t i = 0; i < kN; ++i)
            std::remove(ckptPath(store, i).c_str());
    ckptStoreRemoveDir(scratch + "/store_blobs");
    ::rmdir(scratch.c_str());

    return failures ? 1 : 0;
}
