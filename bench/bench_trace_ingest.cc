/**
 * @file
 * Trace-ingestion harness: the three costs the trace frontend adds to a
 * farm run, each a row in BENCH_trace_ingest.json perf_diff gates on
 * wall_ms:
 *
 *  - construct: streaming construction of the million-node bfs-roads-1m
 *    workload (graph build + BFS image layout), the O(V+E) path the
 *    scaled tiers depend on (construct_ms acceptance);
 *  - record: a native bfs-roads run teed through --record-trace, i.e.
 *    simulation plus LZ block compression and CRC framing;
 *  - replay: the same interval re-run from the recorded trace, i.e.
 *    block decompression plus record decoding feeding the core.
 *
 * Hard failure (exit 1), because it is a correctness claim, not perf:
 * the replay's cycles/instructions/ipc/mpki must equal the recording
 * run's exactly — a trace that does not reproduce its native run is
 * useless no matter how fast it reads.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

#include "bench_util.h"
#include "trace_fe/trace_format.h"
#include "workloads/registry.h"

using namespace pfm;

namespace {

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

std::uint64_t
fileBytes(const std::string& path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0
        ? static_cast<std::uint64_t>(st.st_size)
        : 0;
}

double
minstrPerSec(std::uint64_t instructions, double wall_ms)
{
    return wall_ms > 0 ? static_cast<double>(instructions) / wall_ms / 1e3
                       : 0;
}

} // namespace

int
main(int argc, char** argv)
{
    (void)argc;
    (void)argv;

    std::string dir = ".";
    if (const char* env = std::getenv("PFM_CKPT_DIR"))
        dir = env;
    const std::string trace_path =
        dir + "/pfm_bench_ingest_" +
        std::to_string(static_cast<unsigned long>(::getpid())) + ".pfmt";

    // Row 1: scaled-tier construction. The old quadratic adjacency build
    // made million-node graphs intractable; this row is the construct_ms
    // acceptance number for the streaming rewrite.
    auto t0 = std::chrono::steady_clock::now();
    Workload big = makeWorkload("bfs-roads-1m");
    const double construct_ms = msSince(t0);
    const std::uint64_t graph_nodes = big.metaVal("num_nodes");

    // Row 2: record a native run. Wall time covers simulation plus the
    // writer's compression/framing; the trace byte count lands in the
    // JSON so size growth is visible in review even though perf_diff
    // only gates wall_ms.
    SimOptions rec = benchOptions("bfs-roads", "none");
    rec.record_trace = trace_path;
    t0 = std::chrono::steady_clock::now();
    Simulator rec_sim(rec);
    const SimResult rec_r = rec_sim.run();
    const double record_ms = msSince(t0);
    const std::uint64_t trace_bytes = fileBytes(trace_path);

    // Row 3: replay the same interval from the trace.
    SimOptions rep = benchOptions("trace:" + trace_path, "none");
    rep.warmup_instructions = rec.warmup_instructions;
    rep.max_instructions = rec.max_instructions;
    t0 = std::chrono::steady_clock::now();
    Simulator rep_sim(rep);
    const SimResult rep_r = rep_sim.run();
    const double replay_ms = msSince(t0);

    int failures = 0;
    if (rep_r.cycles != rec_r.cycles ||
        rep_r.instructions != rec_r.instructions ||
        rep_r.ipc != rec_r.ipc || rep_r.mpki != rec_r.mpki) {
        std::fprintf(stderr,
                     "FAIL: replay diverged from the recording run "
                     "(cycles %llu vs %llu, instructions %llu vs %llu)\n",
                     static_cast<unsigned long long>(rep_r.cycles),
                     static_cast<unsigned long long>(rec_r.cycles),
                     static_cast<unsigned long long>(rep_r.instructions),
                     static_cast<unsigned long long>(rec_r.instructions));
        ++failures;
    }

    const double rec_mips = minstrPerSec(rec_r.instructions, record_ms);
    const double rep_mips = minstrPerSec(rep_r.instructions, replay_ms);

    reportHeader("Trace ingestion: construct / record / replay");
    reportRow("construct_1m", construct_ms, " ms");
    reportRow("graph_nodes", static_cast<double>(graph_nodes) / 1e6,
              " M");
    reportRow("record", record_ms, " ms");
    reportRow("record_tput", rec_mips, " Minstr/s");
    reportRow("trace_size", static_cast<double>(trace_bytes) / 1024,
              " KiB");
    reportRow("replay", replay_ms, " ms");
    reportRow("replay_tput", rep_mips, " Minstr/s");

    std::string json_dir = ".";
    if (const char* env = std::getenv("PFM_BENCH_JSON_DIR"))
        json_dir = env;
    const std::string json_path = json_dir + "/BENCH_trace_ingest.json";
    std::ofstream os(json_path);
    if (os) {
        os << "{\n  \"bench\": \"trace_ingest\",\n";
        os << "  \"trace_bytes\": " << trace_bytes << ",\n";
        os << "  \"total_wall_ms\": "
           << construct_ms + record_ms + replay_ms << ",\n  \"rows\": [\n";
        os << "    {\"label\": \"construct/bfs-roads-1m\", \"wall_ms\": "
           << construct_ms << ", \"construct_ms\": " << construct_ms
           << "},\n";
        os << "    {\"label\": \"record/bfs-roads\", \"wall_ms\": "
           << record_ms << ", \"minstr_per_s\": " << rec_mips << "},\n";
        os << "    {\"label\": \"replay/bfs-roads\", \"wall_ms\": "
           << replay_ms << ", \"minstr_per_s\": " << rep_mips
           << "}\n  ]\n}\n";
    }

    std::remove(trace_path.c_str());
    return failures ? 1 : 0;
}
