/**
 * @file
 * Figure 14: bfs speedup vs the size of its frontier / begin-address /
 * trip-count / neighbor queues (clk4_w4 delay4 queue32 portLS1).
 */

#include "bench_util.h"

using namespace pfm;

int
main(int argc, char** argv)
{
    const unsigned entries[] = {16u, 32u, 64u, 128u};

    SweepSpec spec;
    RunHandle base = spec.add("base", benchOptions("bfs-roads", "none"));
    std::vector<RunHandle> runs;
    for (unsigned n : entries) {
        SimOptions o = benchOptions("bfs-roads", "auto",
                                    "clk4_w4 delay4 queue32 portLS1");
        o.bfs_queue_entries = n;
        runs.push_back(spec.add(std::to_string(n) + "-entry queues",
                                std::move(o), base));
    }

    SweepRunner runner = benchRunner(argc, argv);
    runner.run(spec);

    reportHeader("Figure 14: bfs vs internal queue entries "
                 "(clk4_w4 delay4 queue32 portLS1)");
    for (size_t i = 0; i < runs.size(); ++i)
        reportRow(std::to_string(entries[i]) + "-entry queues",
                  speedupPct(runner.sim(base), runner.sim(runs[i])));
    reportNote("paper: performance scales with the queue sizes");

    emitBenchJson("fig14", spec, runner);
    return 0;
}
