/**
 * @file
 * Figure 14: bfs speedup vs the size of its frontier / begin-address /
 * trip-count / neighbor queues (clk4_w4 delay4 queue32 portLS1).
 */

#include "bench_util.h"

using namespace pfm;

int
main()
{
    reportHeader("Figure 14: bfs vs internal queue entries "
                 "(clk4_w4 delay4 queue32 portLS1)");
    SimResult base = runSim(benchOptions("bfs-roads", "none"));
    for (unsigned n : {16u, 32u, 64u, 128u}) {
        SimOptions o = benchOptions("bfs-roads", "auto",
                                    "clk4_w4 delay4 queue32 portLS1");
        o.bfs_queue_entries = n;
        SimResult res = runSim(o);
        reportRow(std::to_string(n) + "-entry queues",
                  speedupPct(base, res));
    }
    reportNote("paper: performance scales with the queue sizes");
    return 0;
}
