/**
 * @file
 * Figure 17: speedups of the five custom prefetchers for different C and
 * W (all configs: delay0 queue32 portALL). The paper's key observation is
 * resistance to C and W.
 */

#include "bench_util.h"

using namespace pfm;

int
main(int argc, char** argv)
{
    const char* workloads[] = {"libquantum", "bwaves", "lbm", "milc",
                               "leslie"};
    const char* cfgs[] = {"clk1_w1", "clk4_w1", "clk4_w4", "clk8_w1"};

    SweepSpec spec;
    std::vector<RunHandle> bases;
    std::vector<std::vector<RunHandle>> runs;
    for (const char* wl : workloads) {
        RunHandle base = spec.add(std::string(wl) + "/base",
                                  benchOptions(wl, "none"));
        bases.push_back(base);
        runs.emplace_back();
        for (const char* cfg : cfgs)
            runs.back().push_back(spec.add(
                std::string(wl) + "/" + cfg,
                benchOptions(wl, "auto",
                             std::string(cfg) + " delay0 queue32 portALL"),
                base));
    }

    SweepRunner runner = benchRunner(argc, argv);
    runner.run(spec);

    reportHeader("Figure 17: custom prefetcher speedups vs clkC_wW "
                 "(delay0 queue32 portALL)");
    for (size_t w = 0; w < runs.size(); ++w) {
        std::printf("  %s (baseline IPC %.2f):\n", workloads[w],
                    runner.sim(bases[w]).ipc);
        for (size_t c = 0; c < runs[w].size(); ++c)
            reportRow(std::string("  ") + cfgs[c],
                      speedupPct(runner.sim(bases[w]),
                                 runner.sim(runs[w][c])));
    }
    reportNote("paper: performance is very resistant to C and W");

    emitBenchJson("fig17", spec, runner);
    return 0;
}
