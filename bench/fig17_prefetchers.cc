/**
 * @file
 * Figure 17: speedups of the five custom prefetchers for different C and
 * W (all configs: delay0 queue32 portALL). The paper's key observation is
 * resistance to C and W.
 */

#include "bench_util.h"

using namespace pfm;

int
main()
{
    reportHeader("Figure 17: custom prefetcher speedups vs clkC_wW "
                 "(delay0 queue32 portALL)");
    for (const char* wl :
         {"libquantum", "bwaves", "lbm", "milc", "leslie"}) {
        SimResult base = runSim(benchOptions(wl, "none"));
        std::printf("  %s (baseline IPC %.2f):\n", wl, base.ipc);
        for (const char* cfg :
             {"clk1_w1", "clk4_w1", "clk4_w4", "clk8_w1"}) {
            SimResult res = runSim(benchOptions(
                wl, "auto", std::string(cfg) + " delay0 queue32 portALL"));
            reportRow(std::string("  ") + cfg, speedupPct(base, res));
        }
    }
    reportNote("paper: performance is very resistant to C and W");
    return 0;
}
