/**
 * @file
 * Figure 17: speedups of the five custom prefetchers for different C and
 * W (all configs: delay0 queue32 portALL). The paper's key observation is
 * resistance to C and W.
 *
 * `--sharded` switches to the checkpoint identity harness: per workload
 * one bare-core warmup leg is checkpointed at the warmup boundary and
 * every configuration restores from it as a measurement leg, alongside an
 * uninterrupted deferred-attach reference run of the same configuration.
 * Restored and reference legs must agree bit for bit (exit 1 otherwise),
 * and the emitted BENCH_fig17.json records the serial-vs-sharded wall
 * time of every leg.
 */

#include <cstring>

#include "bench_util.h"

using namespace pfm;

namespace {

const char* kWorkloads[] = {"libquantum", "bwaves", "lbm", "milc", "leslie"};
const char* kCfgs[] = {"clk1_w1", "clk4_w1", "clk4_w4", "clk8_w1"};

/**
 * Options for one sharded-mode leg: the component attaches at the warmup
 * boundary, so the warmup phase is bare-core and one checkpoint serves
 * every configuration. Sharded mode models the long-run scenario the
 * checkpoint subsystem exists for — a warmup as long as the measurement
 * itself — so restoring (one file read) is much cheaper than re-running
 * warmup in every leg. Serial reference legs use the same warmup length,
 * keeping the identity comparison like-for-like.
 */
SimOptions
shardedOptions(const std::string& workload, const std::string& component,
               const std::string& tokens = "", bool defer = true)
{
    SimOptions o = benchOptions(workload, component, tokens);
    o.warmup_instructions = o.max_instructions;
    o.defer_component = defer;
    return o;
}

int
runClassic(int argc, char** argv)
{
    SweepSpec spec;
    std::vector<RunHandle> bases;
    std::vector<std::vector<RunHandle>> runs;
    for (const char* wl : kWorkloads) {
        RunHandle base = spec.add(std::string(wl) + "/base",
                                  benchOptions(wl, "none"));
        bases.push_back(base);
        runs.emplace_back();
        for (const char* cfg : kCfgs)
            runs.back().push_back(spec.add(
                std::string(wl) + "/" + cfg,
                benchOptions(wl, "auto",
                             std::string(cfg) + " delay0 queue32 portALL"),
                base));
    }

    SweepRunner runner = benchRunner(argc, argv);
    runner.run(spec);

    reportHeader("Figure 17: custom prefetcher speedups vs clkC_wW "
                 "(delay0 queue32 portALL)");
    for (size_t w = 0; w < runs.size(); ++w) {
        std::printf("  %s (baseline IPC %.2f):\n", kWorkloads[w],
                    runner.sim(bases[w]).ipc);
        for (size_t c = 0; c < runs[w].size(); ++c)
            reportRow(std::string("  ") + kCfgs[c],
                      speedupPct(runner.sim(bases[w]),
                                 runner.sim(runs[w][c])));
    }
    reportNote("paper: performance is very resistant to C and W");

    emitBenchJson("fig17", spec, runner);
    return 0;
}

int
runSharded(int argc, char** argv)
{
    struct LegPair {
        std::string name;
        RunHandle serial;
        RunHandle shard;
    };

    SweepSpec spec;
    std::vector<RunHandle> warmups;
    std::vector<LegPair> pairs;
    std::vector<RunHandle> shard_bases;
    std::vector<std::vector<RunHandle>> shard_runs;

    for (const char* wl : kWorkloads) {
        RunHandle warm = spec.addWarmup(
            std::string("warmup/") + wl,
            shardedOptions(wl, "none", "", false));
        warmups.push_back(warm);

        RunHandle sbase = spec.add(std::string("serial/") + wl + "/base",
                                   shardedOptions(wl, "none"));
        RunHandle hbase =
            spec.addMeasurement(std::string("sharded/") + wl + "/base",
                                shardedOptions(wl, "none"), warm);
        pairs.push_back({std::string(wl) + "/base", sbase, hbase});
        shard_bases.push_back(hbase);
        shard_runs.emplace_back();

        for (const char* cfg : kCfgs) {
            std::string tokens =
                std::string(cfg) + " delay0 queue32 portALL";
            RunHandle s =
                spec.add(std::string("serial/") + wl + "/" + cfg,
                         shardedOptions(wl, "auto", tokens), sbase);
            RunHandle h = spec.addMeasurement(
                std::string("sharded/") + wl + "/" + cfg,
                shardedOptions(wl, "auto", tokens), warm, hbase);
            pairs.push_back({std::string(wl) + "/" + cfg, s, h});
            shard_runs.back().push_back(h);
        }
    }

    SweepRunner runner = benchRunner(argc, argv);
    runner.run(spec);

    reportHeader("Figure 17 (sharded): warmup-once checkpoint legs vs "
                 "uninterrupted runs");

    // Identity gate: a restored measurement leg must be indistinguishable
    // from the uninterrupted deferred-attach run of the same config.
    bool identical = true;
    for (const LegPair& p : pairs) {
        const SimResult& a = runner.sim(p.serial);
        const SimResult& b = runner.sim(p.shard);
        if (a.ipc != b.ipc || a.mpki != b.mpki || a.cycles != b.cycles ||
            a.instructions != b.instructions ||
            a.rst_hit_pct != b.rst_hit_pct ||
            a.fst_hit_pct != b.fst_hit_pct || a.finished != b.finished) {
            identical = false;
            std::printf("  IDENTITY MISMATCH %s: serial ipc=%.17g "
                        "cycles=%llu vs sharded ipc=%.17g cycles=%llu\n",
                        p.name.c_str(), a.ipc,
                        (unsigned long long)a.cycles, b.ipc,
                        (unsigned long long)b.cycles);
        }
    }
    reportNote(identical
                   ? "identity check: all restored legs byte-identical to "
                     "uninterrupted runs"
                   : "identity check FAILED");

    double warm_ms = 0, serial_ms = 0, shard_ms = 0;
    for (RunHandle h : warmups)
        warm_ms += runner.result(h).wall_ms;
    for (const LegPair& p : pairs) {
        serial_ms += runner.result(p.serial).wall_ms;
        shard_ms += runner.result(p.shard).wall_ms;
    }
    std::printf("  wall (cpu-time sums): serial %.0f ms vs sharded "
                "%.0f ms warmup + %.0f ms measurement (%ux warmup reuse, "
                "--jobs=%u)\n",
                serial_ms, warm_ms, shard_ms,
                static_cast<unsigned>(pairs.size() / warmups.size()),
                runner.jobs());

    for (size_t w = 0; w < shard_runs.size(); ++w) {
        std::printf("  %s (baseline IPC %.2f):\n", kWorkloads[w],
                    runner.sim(shard_bases[w]).ipc);
        for (size_t c = 0; c < shard_runs[w].size(); ++c)
            reportRow(std::string("  ") + kCfgs[c],
                      speedupPct(runner.sim(shard_bases[w]),
                                 runner.sim(shard_runs[w][c])));
    }

    emitBenchJson("fig17", spec, runner);
    return identical ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--sharded") == 0)
            return runSharded(argc, argv);
    return runClassic(argc, argv);
}
