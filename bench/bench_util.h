/**
 * @file
 * Shared helpers for the per-figure bench harnesses.
 */

#ifndef PFM_BENCH_BENCH_UTIL_H
#define PFM_BENCH_BENCH_UTIL_H

#include <string>

#include "sim/options.h"
#include "sim/report.h"
#include "sim/simulator.h"

namespace pfm {

/** Options preset for a bench run of @p workload with @p component. */
inline SimOptions
benchOptions(const std::string& workload, const std::string& component,
             const std::string& tokens = "")
{
    SimOptions o;
    o.workload = workload;
    o.component = component;
    o.max_instructions = defaultInstructionBudget();
    o.warmup_instructions = o.max_instructions / 10;
    if (!tokens.empty())
        applyTokens(o, tokens);
    return o;
}

} // namespace pfm

#endif // PFM_BENCH_BENCH_UTIL_H
