/**
 * @file
 * Shared helpers for the per-figure bench harnesses.
 */

#ifndef PFM_BENCH_BENCH_UTIL_H
#define PFM_BENCH_BENCH_UTIL_H

#include <cstdlib>
#include <string>

#include "sim/options.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "sim/sweep.h"

namespace pfm {

/** Options preset for a bench run of @p workload with @p component. */
inline SimOptions
benchOptions(const std::string& workload, const std::string& component,
             const std::string& tokens = "")
{
    SimOptions o;
    o.workload = workload;
    o.component = component;
    o.max_instructions = defaultInstructionBudget();
    o.warmup_instructions = o.max_instructions / 10;
    if (!tokens.empty())
        applyTokens(o, tokens);
    // Environment override hook, applied after the harness's own tokens:
    //   PFM_EXTRA_TOKENS="fastfwd=off" ./fig17_prefetchers --jobs=1
    // lets CI re-run any figure with the fast-forward escape hatch (or any
    // other token) without recompiling, to verify reports are identical.
    if (const char* extra = std::getenv("PFM_EXTRA_TOKENS"))
        applyTokens(o, extra);
    return o;
}

/**
 * Executor for a harness's sweep, honouring --jobs=N / PFM_JOBS from the
 * harness command line (default: hardware_concurrency()). Harnesses
 * declare every configuration up front in a SweepSpec, run it here, then
 * print rows from the collected results in spec order — so the report is
 * byte-identical for any worker count.
 */
inline SweepRunner
benchRunner(int argc, char** argv)
{
    return SweepRunner(resolveJobs(argc, argv));
}

} // namespace pfm

#endif // PFM_BENCH_BENCH_UTIL_H
