/**
 * @file
 * Figure 10: astar speedup vs the number of index_queue entries (the
 * design's speculative scope). clk4_w4 delay4 queue32 portLS1.
 */

#include "bench_util.h"

using namespace pfm;

int
main()
{
    reportHeader("Figure 10: astar vs index_queue entries "
                 "(clk4_w4 delay4 queue32 portLS1)");
    SimResult base = runSim(benchOptions("astar", "none"));
    for (unsigned n : {2u, 4u, 8u, 16u}) {
        SimOptions o = benchOptions("astar", "auto",
                                    "clk4_w4 delay4 queue32 portLS1");
        o.astar_index_queue = n;
        SimResult res = runSim(o);
        std::string label = std::to_string(n) + "-entry index_queue";
        if (n == 8)
            reportRowVs(label, speedupPct(base, res), 154.0);
        else
            reportRow(label, speedupPct(base, res));
    }
    reportNote("paper: 8 entries capture most of the speedup potential");
    return 0;
}
