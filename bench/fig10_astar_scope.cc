/**
 * @file
 * Figure 10: astar speedup vs the number of index_queue entries (the
 * design's speculative scope). clk4_w4 delay4 queue32 portLS1.
 */

#include "bench_util.h"

using namespace pfm;

int
main(int argc, char** argv)
{
    const unsigned entries[] = {2u, 4u, 8u, 16u};

    SweepSpec spec;
    RunHandle base = spec.add("base", benchOptions("astar", "none"));
    std::vector<RunHandle> runs;
    for (unsigned n : entries) {
        SimOptions o = benchOptions("astar", "auto",
                                    "clk4_w4 delay4 queue32 portLS1");
        o.astar_index_queue = n;
        runs.push_back(spec.add(std::to_string(n) + "-entry index_queue",
                                std::move(o), base));
    }

    SweepRunner runner = benchRunner(argc, argv);
    runner.run(spec);

    reportHeader("Figure 10: astar vs index_queue entries "
                 "(clk4_w4 delay4 queue32 portLS1)");
    for (size_t i = 0; i < runs.size(); ++i) {
        unsigned n = entries[i];
        double speedup = speedupPct(runner.sim(base), runner.sim(runs[i]));
        std::string label = std::to_string(n) + "-entry index_queue";
        if (n == 8)
            reportRowVs(label, speedup, 154.0);
        else
            reportRow(label, speedup);
    }
    reportNote("paper: 8 entries capture most of the speedup potential");

    emitBenchJson("fig10", spec, runner);
    return 0;
}
