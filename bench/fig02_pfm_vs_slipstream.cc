/**
 * @file
 * Figure 2: IPC improvement of PFM custom components and the simplified
 * Slipstream 2.0 model over the baseline core, for astar and bfs (Roads).
 */

#include "bench_util.h"

using namespace pfm;

int
main()
{
    reportHeader("Figure 2: Speedups of PFM and Slipstream 2.0");

    {
        SimResult base = runSim(benchOptions("astar", "none"));
        SimResult slip = runSim(benchOptions(
            "astar", "slipstream", "clk4_w4 delay4 queue32 portLS1"));
        SimResult pfm = runSim(benchOptions(
            "astar", "auto", "clk4_w4 delay4 queue32 portLS1"));
        reportRowVs("astar slipstream-2.0", speedupPct(base, slip), 18.0);
        reportRowVs("astar PFM", speedupPct(base, pfm), 154.0);
    }
    {
        SimResult base = runSim(benchOptions("bfs-roads", "none"));
        SimResult slip = runSim(benchOptions(
            "bfs-roads", "slipstream", "clk4_w4 delay4 queue32 portLS1"));
        SimResult pfm = runSim(benchOptions(
            "bfs-roads", "auto", "clk4_w4 delay4 queue32 portLS1"));
        reportRow("bfs slipstream-2.0", speedupPct(base, slip));
        reportNote("paper shows a small slipstream bar for bfs (no number "
                   "given in the text)");
        reportRowVs("bfs PFM", speedupPct(base, pfm), 125.0);
    }
    return 0;
}
