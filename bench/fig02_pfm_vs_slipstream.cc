/**
 * @file
 * Figure 2: IPC improvement of PFM custom components and the simplified
 * Slipstream 2.0 model over the baseline core, for astar and bfs (Roads).
 */

#include "bench_util.h"

using namespace pfm;

int
main(int argc, char** argv)
{
    const char* cfg = "clk4_w4 delay4 queue32 portLS1";
    SweepSpec spec;
    RunHandle abase = spec.add("astar/base", benchOptions("astar", "none"));
    RunHandle aslip = spec.add("astar/slipstream",
                               benchOptions("astar", "slipstream", cfg),
                               abase);
    RunHandle apfm =
        spec.add("astar/pfm", benchOptions("astar", "auto", cfg), abase);
    RunHandle bbase =
        spec.add("bfs/base", benchOptions("bfs-roads", "none"));
    RunHandle bslip = spec.add("bfs/slipstream",
                               benchOptions("bfs-roads", "slipstream", cfg),
                               bbase);
    RunHandle bpfm =
        spec.add("bfs/pfm", benchOptions("bfs-roads", "auto", cfg), bbase);

    SweepRunner runner = benchRunner(argc, argv);
    runner.run(spec);

    reportHeader("Figure 2: Speedups of PFM and Slipstream 2.0");
    reportRowVs("astar slipstream-2.0",
                speedupPct(runner.sim(abase), runner.sim(aslip)), 18.0);
    reportRowVs("astar PFM",
                speedupPct(runner.sim(abase), runner.sim(apfm)), 154.0);
    reportRow("bfs slipstream-2.0",
              speedupPct(runner.sim(bbase), runner.sim(bslip)));
    reportNote("paper shows a small slipstream bar for bfs (no number "
               "given in the text)");
    reportRowVs("bfs PFM",
                speedupPct(runner.sim(bbase), runner.sim(bpfm)), 125.0);

    emitBenchJson("fig02", spec, runner);
    return 0;
}
