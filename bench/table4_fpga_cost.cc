/**
 * @file
 * Table 4: FPGA cost/frequency/power of the custom components, from the
 * structural resource model, side by side with the paper's synthesis
 * results.
 */

#include <cstdio>

#include "energy/fpga_model.h"
#include "sim/report.h"

using namespace pfm;

int
main()
{
    reportHeader("Table 4: FPGA cost model vs paper (xcvu3p)");
    std::printf("  %-14s %8s %8s %6s %4s %7s %9s %7s %8s\n", "design",
                "LUT", "FF", "BRAM", "DSP", "MHz", "logic mW", "io mW",
                "stat mW");

    auto designs = paperTable4Designs();
    auto refs = paperTable4Reference();
    for (size_t i = 0; i < designs.size(); ++i) {
        FpgaEstimate e = estimateFpga(designs[i]);
        std::printf("  %-14s %8llu %8llu %6.1f %4u %7.0f %9.0f %7.0f "
                    "%8.0f\n",
                    e.name.c_str(), (unsigned long long)e.luts,
                    (unsigned long long)e.ffs, e.brams, e.dsps, e.freq_mhz,
                    e.dyn_logic_mw, e.dyn_io_mw, e.static_mw);
        const FpgaEstimate& r = refs[i];
        std::printf("  %-14s %8llu %8llu %6.1f %4u %7.0f %9.0f %7.0f "
                    "%8.0f\n",
                    "  (paper)", (unsigned long long)r.luts,
                    (unsigned long long)r.ffs, r.brams, r.dsps, r.freq_mhz,
                    r.dyn_logic_mw, r.dyn_io_mw, r.static_mw);
    }
    return 0;
}
