/**
 * @file
 * Table 3: bfs FST and RST snoop percentages (Roads input).
 */

#include "bench_util.h"

using namespace pfm;

int
main(int argc, char** argv)
{
    SweepSpec spec;
    RunHandle run = spec.add(
        "bfs/clk4_w4",
        benchOptions("bfs-roads", "auto", "clk4_w4 delay0 queue32 portALL"));

    SweepRunner runner = benchRunner(argc, argv);
    runner.run(spec);
    const SimResult& r = runner.sim(run);

    reportHeader("Table 3: bfs FST and RST snoop percentages");
    reportRowVs("% retired in ROI hit RST", r.rst_hit_pct, 31.0);
    reportRowVs("% fetched in ROI hit FST", r.fst_hit_pct, 13.0);

    emitBenchJson("table3", spec, runner);
    return 0;
}
