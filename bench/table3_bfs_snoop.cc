/**
 * @file
 * Table 3: bfs FST and RST snoop percentages (Roads input).
 */

#include "bench_util.h"

using namespace pfm;

int
main()
{
    reportHeader("Table 3: bfs FST and RST snoop percentages");
    SimResult r = runSim(benchOptions("bfs-roads", "auto",
                                      "clk4_w4 delay0 queue32 portALL"));
    reportRowVs("% retired in ROI hit RST", r.rst_hit_pct, 31.0);
    reportRowVs("% fetched in ROI hit FST", r.fst_hit_pct, 13.0);
    return 0;
}
