/**
 * @file
 * Compare two BENCH_<figure>.json files (baseline vs candidate) and print
 * a per-configuration wall-time / IPC delta table. Exits non-zero when
 * any configuration's wall time regresses by more than the threshold
 * (default 5%), so it can gate CI via the `perf` ctest label:
 *
 *   perf_diff [--threshold=PCT] baseline.json candidate.json
 *
 * Exit codes: 0 ok, 1 wall-time regression past threshold, 2 usage or
 * parse error. IPC deltas are informational: any IPC change at all means
 * the candidate simulates a *different machine* (a correctness bug, not a
 * perf one), so it is flagged loudly but judged by the same exit code —
 * the tier-1 identity tests are the authority on simulation output.
 *
 * The parser is deliberately dependency-free: it understands exactly the
 * flat shape writeBenchJson()/bench_hotpath emit — a top-level object
 * with "total_wall_ms" and a "runs" or "rows" array of one-line row
 * objects carrying "label", "wall_ms" and optionally "ipc"/"cycles".
 * Rows may also carry "port_<name>_*" occupancy columns (TimedPort
 * telemetry); those are diffed informationally like IPC — a changed
 * occupancy profile means different queue pressure, worth eyeballing,
 * but wall time alone decides the exit code. Checkpoint-store rows
 * (bench_ckpt_store) additionally carry "size_bytes"/"restore_ms"
 * storage columns, and "pfstats" runs carry "pf_*" prefetch-accounting
 * columns — both diffed the same informational way.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct BenchRow {
    std::string label;
    double wall_ms = -1;  // <=0 or non-finite = not comparable
    double ipc = -1;  // <0 = absent
    unsigned long long cycles = 0;
    /** "port_<name>_*" occupancy columns, in row order. */
    std::vector<std::pair<std::string, double>> ports;
    /** "pf_*" prefetch-accounting columns (token "pfstats" runs). */
    std::vector<std::pair<std::string, double>> pf;
    double size_bytes = -1;  // <0 = absent; checkpoint-store rows only
    double restore_ms = -1;  // <0 = absent
};

struct BenchFile {
    std::string path;
    double total_wall_ms = -1;
    std::vector<BenchRow> rows;
};

/** Value text after `"key":` inside @p obj, or "" when absent. */
std::string
rawValue(const std::string& obj, const char* key)
{
    std::string needle = std::string("\"") + key + "\"";
    size_t k = obj.find(needle);
    if (k == std::string::npos)
        return "";
    size_t colon = obj.find(':', k + needle.size());
    if (colon == std::string::npos)
        return "";
    size_t start = obj.find_first_not_of(" \t\n", colon + 1);
    if (start == std::string::npos)
        return "";
    if (obj[start] == '"') {
        size_t end = start + 1;
        while (end < obj.size() && obj[end] != '"') {
            if (obj[end] == '\\')
                ++end;
            ++end;
        }
        return obj.substr(start + 1, end - start - 1);
    }
    size_t end = obj.find_first_of(",}\n", start);
    return obj.substr(start, end - start);
}

double
numValue(const std::string& obj, const char* key, double fallback)
{
    std::string v = rawValue(obj, key);
    if (v.empty())
        return fallback;
    return std::strtod(v.c_str(), nullptr);
}

bool
parseBenchFile(const std::string& path, BenchFile& out)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "perf_diff: cannot open '%s'\n", path.c_str());
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();
    out.path = path;

    size_t arr = text.find("\"runs\"");
    if (arr == std::string::npos)
        arr = text.find("\"rows\"");
    if (arr == std::string::npos) {
        std::fprintf(stderr,
                     "perf_diff: '%s' has no \"runs\"/\"rows\" array\n",
                     path.c_str());
        return false;
    }
    // Header keys live before the row array, so a row's own "wall_ms"
    // can't shadow the total.
    out.total_wall_ms = numValue(text.substr(0, arr), "total_wall_ms", -1);

    size_t open = text.find('[', arr);
    size_t close = text.find(']', arr);
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
        std::fprintf(stderr, "perf_diff: malformed row array in '%s'\n",
                     path.c_str());
        return false;
    }
    // Row objects are emitted one per line without nesting, so brace
    // matching degenerates to find-the-pair.
    size_t pos = open;
    while (true) {
        size_t ro = text.find('{', pos);
        if (ro == std::string::npos || ro > close)
            break;
        size_t rc = text.find('}', ro);
        if (rc == std::string::npos || rc > close)
            break;
        const std::string obj = text.substr(ro, rc - ro + 1);
        BenchRow row;
        row.label = rawValue(obj, "label");
        row.wall_ms = numValue(obj, "wall_ms", -1);
        row.ipc = numValue(obj, "ipc", -1);
        row.cycles = static_cast<unsigned long long>(
            numValue(obj, "cycles", 0));
        row.size_bytes = numValue(obj, "size_bytes", -1);
        row.restore_ms = numValue(obj, "restore_ms", -1);
        for (size_t p = obj.find("\"port_"); p != std::string::npos;
             p = obj.find("\"port_", p + 1)) {
            size_t kend = obj.find('"', p + 1);
            if (kend == std::string::npos)
                break;
            const std::string key = obj.substr(p + 1, kend - p - 1);
            row.ports.emplace_back(key, numValue(obj, key.c_str(), 0));
            p = kend;
        }
        for (size_t p = obj.find("\"pf_"); p != std::string::npos;
             p = obj.find("\"pf_", p + 1)) {
            size_t kend = obj.find('"', p + 1);
            if (kend == std::string::npos)
                break;
            const std::string key = obj.substr(p + 1, kend - p - 1);
            row.pf.emplace_back(key, numValue(obj, key.c_str(), 0));
            p = kend;
        }
        if (row.label.empty()) {
            std::fprintf(stderr, "perf_diff: row without label in '%s'\n",
                         path.c_str());
            return false;
        }
        out.rows.push_back(row);
        pos = rc + 1;
    }
    if (out.rows.empty()) {
        std::fprintf(stderr, "perf_diff: no rows parsed from '%s'\n",
                     path.c_str());
        return false;
    }
    return true;
}

const BenchRow*
findRow(const BenchFile& f, const std::string& label)
{
    for (const BenchRow& r : f.rows)
        if (r.label == label)
            return &r;
    return nullptr;
}

const double*
findKey(const std::vector<std::pair<std::string, double>>& cols,
        const std::string& key)
{
    for (const auto& kv : cols)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

/**
 * A wall-time value is comparable only when it is a finite positive
 * number. Missing keys (numValue fallback -1), zero from a malformed
 * token, or inf/NaN text must all land a row in the "not comparable"
 * bucket — never in the delta arithmetic, where a base of 0 used to turn
 * the percentage into inf/NaN (or, worse, a masked 0%).
 */
bool
comparableWall(double v)
{
    return std::isfinite(v) && v > 0;
}

/** Delta percentage; callers must have checked comparableWall(base). */
double
pctDelta(double base, double now)
{
    return (now / base - 1.0) * 100.0;
}

/** Wall-ms column: the value when meaningful, '-' when not. */
const char*
wallColumn(char (&buf)[32], double v)
{
    if (!comparableWall(v))
        return "-";
    std::snprintf(buf, sizeof buf, "%.3f", v);
    return buf;
}

} // namespace

int
main(int argc, char** argv)
{
    double threshold = 5.0;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const char* a = argv[i];
        if (std::strncmp(a, "--threshold=", 12) == 0) {
            char* end = nullptr;
            threshold = std::strtod(a + 12, &end);
            if (end == a + 12 || *end != '\0' || threshold < 0) {
                std::fprintf(stderr, "perf_diff: bad --threshold '%s'\n", a);
                return 2;
            }
        } else if (a[0] == '-') {
            std::fprintf(stderr, "perf_diff: unknown option '%s'\n", a);
            return 2;
        } else {
            files.push_back(a);
        }
    }
    if (files.size() != 2) {
        std::fprintf(stderr,
                     "usage: perf_diff [--threshold=PCT] baseline.json "
                     "candidate.json\n");
        return 2;
    }

    BenchFile base, cand;
    if (!parseBenchFile(files[0], base) || !parseBenchFile(files[1], cand))
        return 2;

    std::printf("perf_diff: %s -> %s (threshold %.1f%% wall)\n",
                base.path.c_str(), cand.path.c_str(), threshold);
    std::printf("  %-28s %12s %12s %8s  %s\n", "config", "base ms",
                "cand ms", "wall", "ipc");

    int regressions = 0;
    int not_comparable = 0;
    bool ipc_drift = false;
    bool port_drift = false;
    bool pf_drift = false;
    for (const BenchRow& b : base.rows) {
        char bcol[32], ccol[32];
        const BenchRow* c = findRow(cand, b.label);
        if (!c) {
            std::printf("  %-28s %12s %12s\n", b.label.c_str(),
                        wallColumn(bcol, b.wall_ms), "MISSING");
            ++regressions;
            continue;
        }
        // Rows whose wall time is missing/zero/non-finite on either side
        // are excluded from the threshold judgement in both directions:
        // they can neither trip the exit code nor launder a regression
        // into a 0% delta.
        const bool comparable =
            comparableWall(b.wall_ms) && comparableWall(c->wall_ms);
        char pct_col[32] = "       -";
        const char* mark = "";
        if (comparable) {
            double wall_pct = pctDelta(b.wall_ms, c->wall_ms);
            std::snprintf(pct_col, sizeof pct_col, "%+7.1f%%", wall_pct);
            if (wall_pct > threshold) {
                mark = "  << REGRESSION";
                ++regressions;
            }
        } else {
            mark = "  (not comparable)";
            ++not_comparable;
        }
        char ipc_col[64] = "-";
        if (b.ipc >= 0 && c->ipc >= 0) {
            if (b.ipc == c->ipc) {
                std::snprintf(ipc_col, sizeof ipc_col, "%.6f", c->ipc);
            } else {
                std::snprintf(ipc_col, sizeof ipc_col,
                              "%.6f -> %.6f (DIVERGED)", b.ipc, c->ipc);
                ipc_drift = true;
            }
        }
        std::printf("  %-28s %12s %12s %s  %s%s\n", b.label.c_str(),
                    wallColumn(bcol, b.wall_ms),
                    wallColumn(ccol, c->wall_ms), pct_col, ipc_col, mark);
        // Port-occupancy columns: informational, like IPC — a changed
        // profile is queue-pressure drift, not a wall-time regression.
        for (const auto& bp : b.ports) {
            const double* cv = findKey(c->ports, bp.first);
            if (!cv) {
                std::printf("      %-38s %12.6f %12s\n", bp.first.c_str(),
                            bp.second, "MISSING");
                port_drift = true;
            } else if (*cv != bp.second) {
                std::printf("      %-38s %12.6f %12.6f  (port drift)\n",
                            bp.first.c_str(), bp.second, *cv);
                port_drift = true;
            }
        }
        for (const auto& cp : c->ports)
            if (!findKey(b.ports, cp.first))
                std::printf("      %-38s %12s %12.6f  (new)\n",
                            cp.first.c_str(), "-", cp.second);
        // Prefetch-accounting columns (pf_issued/pf_useful/.../pf
        // coverage and accuracy): informational, same contract as the
        // port columns — changed counters mean the prefetcher behaved
        // differently, flagged for eyeballing, never a wall-time gate.
        for (const auto& bp : b.pf) {
            const double* cv = findKey(c->pf, bp.first);
            if (!cv) {
                std::printf("      %-38s %12.6f %12s\n", bp.first.c_str(),
                            bp.second, "MISSING");
                pf_drift = true;
            } else if (*cv != bp.second) {
                std::printf("      %-38s %12.6f %12.6f  (pf drift)\n",
                            bp.first.c_str(), bp.second, *cv);
                pf_drift = true;
            }
        }
        for (const auto& cp : c->pf)
            if (!findKey(b.pf, cp.first))
                std::printf("      %-38s %12s %12.6f  (new)\n",
                            cp.first.c_str(), "-", cp.second);
        // Storage columns: informational like IPC — bytes on disk and
        // restore latency are storage-efficiency numbers; wall time
        // alone gates.
        const struct {
            const char* key;
            double bval, cval;
        } storage[] = {
            {"size_bytes", b.size_bytes, c->size_bytes},
            {"restore_ms", b.restore_ms, c->restore_ms},
        };
        for (const auto& s : storage) {
            if (s.bval < 0 && s.cval < 0)
                continue;
            // Mirror the port columns: '-' for an absent side, '(new)'
            // when only the candidate has the column, 'MISSING' when
            // only the baseline does, and a percent delta only when
            // both sides are present and the baseline can divide.
            char bbuf[32], cbuf[32];
            const char* bs = "-";
            const char* cs = "-";
            if (s.bval >= 0) {
                std::snprintf(bbuf, sizeof bbuf, "%.3f", s.bval);
                bs = bbuf;
            }
            if (s.cval >= 0) {
                std::snprintf(cbuf, sizeof cbuf, "%.3f", s.cval);
                cs = cbuf;
            }
            if (s.bval < 0)
                std::printf("      %-38s %12s %12s  (new)\n", s.key, bs,
                            cs);
            else if (s.cval < 0)
                std::printf("      %-38s %12s %12s  (storage)\n", s.key,
                            bs, "MISSING");
            else if (s.bval > 0)
                std::printf("      %-38s %12s %12s %+7.1f%%  "
                            "(storage)\n",
                            s.key, bs, cs, pctDelta(s.bval, s.cval));
            else
                std::printf("      %-38s %12s %12s      (storage, "
                            "zero baseline)\n",
                            s.key, bs, cs);
        }
    }
    for (const BenchRow& c : cand.rows)
        if (!findRow(base, c.label))
            std::printf("  %-28s %12s %12.3f   (new)\n", c.label.c_str(),
                        "-", c.wall_ms);

    if (comparableWall(base.total_wall_ms) &&
        comparableWall(cand.total_wall_ms))
        std::printf("  %-28s %12.3f %12.3f %+7.1f%%\n", "TOTAL",
                    base.total_wall_ms, cand.total_wall_ms,
                    pctDelta(base.total_wall_ms, cand.total_wall_ms));
    if (not_comparable)
        std::printf("perf_diff: note — %d row(s) not comparable (missing "
                    "or non-positive wall_ms); excluded from the "
                    "threshold judgement\n",
                    not_comparable);
    if (ipc_drift)
        std::printf("perf_diff: WARNING — IPC diverged; the candidate "
                    "simulates a different machine\n");
    if (port_drift)
        std::printf("perf_diff: note — port occupancy diverged "
                    "(informational; queue-pressure profile changed)\n");
    if (pf_drift)
        std::printf("perf_diff: note — prefetch accounting diverged "
                    "(informational; coverage/accuracy profile "
                    "changed)\n");
    if (regressions) {
        std::printf("perf_diff: %d configuration(s) regressed past "
                    "%.1f%%\n", regressions, threshold);
        return 1;
    }
    std::printf("perf_diff: ok\n");
    return 0;
}
