/**
 * @file
 * Hot-path harness for the flattened fast paths (bind-once stats
 * registry, TAGE index memoization, queue-based prefetch walk). Reports
 * two numbers the ROADMAP tracks:
 *  - Simulator construction time (every counter bind + predictor tables);
 *  - simulated core cycles per wall-second on representative runs.
 * Machine-readable output lands in BENCH_hotpath.json; run with --jobs=1
 * for the single-thread throughput figure.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>

#include "bench_util.h"

using namespace pfm;

namespace {

double
cyclesPerSec(const SweepResult& r)
{
    if (r.wall_ms <= 0)
        return 0;
    return static_cast<double>(r.sim.cycles) / (r.wall_ms / 1000.0);
}

} // namespace

int
main(int argc, char** argv)
{
    using clock = std::chrono::steady_clock;

    // Part 1: construction cost. Building a Simulator exercises the
    // registry bind path for every cached counter in core/memory/pfm and
    // builds the TAGE-SC-L tables.
    constexpr int kCtorReps = 20;
    SimOptions copt =
        benchOptions("astar", "auto", "clk4_w4 delay0 queue32 portALL");
    auto t0 = clock::now();
    for (int i = 0; i < kCtorReps; ++i)
        Simulator sim(copt);
    double ctor_ms =
        std::chrono::duration<double, std::milli>(clock::now() - t0)
            .count() /
        kCtorReps;

    // Part 2: steady-state throughput. base hits the TAGE predict path
    // hardest (no agent overrides), the custom run adds the agent/stat
    // paths, lbm drives the prefetch walk queue.
    SweepSpec spec;
    RunHandle base = spec.add("astar_base", benchOptions("astar", "none"));
    RunHandle custom = spec.add(
        "astar_clk4_w4",
        benchOptions("astar", "auto", "clk4_w4 delay0 queue32 portALL"),
        base);
    RunHandle prefetch =
        spec.add("lbm_prefetch", benchOptions("lbm", "auto"));

    SweepRunner runner = benchRunner(argc, argv);
    runner.run(spec);

    reportHeader("Hot-path harness: construction + cycles/sec");
    reportNote("construction: " + std::to_string(ctor_ms) + " ms/Simulator (" +
               std::to_string(kCtorReps) + " reps)");
    const RunHandle handles[] = {base, custom, prefetch};
    for (RunHandle h : handles) {
        const SweepRun& run = spec.runs()[h.index];
        reportRow(run.label, cyclesPerSec(runner.result(h)) / 1e6,
                  " Mcycles/s");
    }

    std::string dir = ".";
    if (const char* env = std::getenv("PFM_BENCH_JSON_DIR"))
        dir = env;
    std::string path = dir + "/BENCH_hotpath.json";
    std::ofstream os(path);
    if (os) {
        os << "{\n  \"bench\": \"hotpath\",\n";
        os << "  \"jobs\": " << runner.jobs() << ",\n";
        os << "  \"construct_reps\": " << kCtorReps << ",\n";
        os << "  \"construct_ms_per_sim\": " << ctor_ms << ",\n";
        os << "  \"total_wall_ms\": " << runner.totalWallMs() << ",\n";
        os << "  \"rows\": [\n";
        for (size_t i = 0; i < spec.size(); ++i) {
            const SweepResult& r = runner.results()[i];
            os << "    {\"label\": \"" << spec.runs()[i].label
               << "\", \"cycles\": " << r.sim.cycles
               << ", \"wall_ms\": " << r.wall_ms
               << ", \"cycles_per_sec\": " << cyclesPerSec(r) << "}"
               << (i + 1 < spec.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
    }
    return 0;
}
