/**
 * @file
 * Figure 18: energy of PFM designs (core+RF) normalized to the baseline
 * (core only). Core energy comes from the event-energy model; RF power
 * from the FPGA structural model. The per-run energy is evaluated on the
 * sweep worker (SweepRun::aux_fn) while the Simulator is alive.
 */

#include <cstdio>

#include "bench_util.h"
#include "energy/energy_model.h"

using namespace pfm;

namespace {

double
energyOf(Simulator& sim, const FpgaEstimate* rf)
{
    EnergyParams ep;
    EnergyBreakdown e = computeEnergy(
        ep, sim.core().cycle(), sim.core().stats(),
        sim.memory().l2().stats(), sim.memory().l3().stats(),
        sim.memory().dram().stats(), rf);
    return e.total_nj;
}

} // namespace

int
main(int argc, char** argv)
{
    auto designs = paperTable4Designs();
    struct Row {
        const char* workload;
        size_t design; // Table 4 structural descriptor for RF power
    };
    const Row rows[] = {
        {"astar", 0},      {"bfs-roads", 0}, {"libquantum", 2},
        {"lbm", 3},        {"bwaves", 4},    {"milc", 5},
        {"leslie", 4},
    };

    SweepSpec spec;
    std::vector<RunHandle> bases, withs;
    for (const Row& row : rows) {
        FpgaEstimate rf = estimateFpga(designs[row.design]);

        SweepRun base;
        base.label = std::string(row.workload) + "/base";
        base.opt = benchOptions(row.workload, "none");
        base.aux_fn = [](Simulator& sim, const SimResult&) {
            return energyOf(sim, nullptr);
        };
        bases.push_back(spec.add(std::move(base)));

        SweepRun with;
        with.label = std::string(row.workload) + "/pfm";
        with.opt = benchOptions(row.workload, "auto",
                                "clk4_w4 delay4 queue32 portLS1");
        with.speedup_base = bases.back();
        with.aux_fn = [rf](Simulator& sim, const SimResult&) {
            return energyOf(sim, &rf);
        };
        withs.push_back(spec.add(std::move(with)));
    }

    SweepRunner runner = benchRunner(argc, argv);
    runner.run(spec);

    reportHeader("Figure 18: core+RF energy normalized to baseline core");
    for (size_t i = 0; i < withs.size(); ++i) {
        std::printf("  %-12s core+RF / baseline = %.2f\n",
                    rows[i].workload,
                    runner.result(withs[i]).aux /
                        runner.result(bases[i]).aux);
    }
    reportNote("paper: every PFM design lands below 1.0 (energy savings "
               "from less misspeculation and shorter runtime)");

    emitBenchJson("fig18", spec, runner);
    return 0;
}
