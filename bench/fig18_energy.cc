/**
 * @file
 * Figure 18: energy of PFM designs (core+RF) normalized to the baseline
 * (core only). Core energy comes from the event-energy model; RF power
 * from the FPGA structural model.
 */

#include <cstdio>

#include "bench_util.h"
#include "energy/energy_model.h"

using namespace pfm;

namespace {

double
runEnergy(const SimOptions& opt, const FpgaEstimate* rf)
{
    Simulator sim(opt);
    SimResult r = sim.run();
    (void)r;
    EnergyParams ep;
    EnergyBreakdown e = computeEnergy(
        ep, sim.core().cycle(), sim.core().stats(),
        sim.memory().l2().stats(), sim.memory().l3().stats(),
        sim.memory().dram().stats(), rf);
    return e.total_nj;
}

} // namespace

int
main()
{
    reportHeader("Figure 18: core+RF energy normalized to baseline core");

    auto designs = paperTable4Designs();
    struct Row {
        const char* workload;
        size_t design; // Table 4 structural descriptor for RF power
    };
    const Row rows[] = {
        {"astar", 0},      {"bfs-roads", 0}, {"libquantum", 2},
        {"lbm", 3},        {"bwaves", 4},    {"milc", 5},
        {"leslie", 4},
    };

    for (const Row& row : rows) {
        FpgaEstimate rf = estimateFpga(designs[row.design]);
        double base =
            runEnergy(benchOptions(row.workload, "none"), nullptr);
        double with = runEnergy(
            benchOptions(row.workload, "auto",
                         "clk4_w4 delay4 queue32 portLS1"),
            &rf);
        std::printf("  %-12s core+RF / baseline = %.2f\n", row.workload,
                    with / base);
    }
    reportNote("paper: every PFM design lands below 1.0 (energy savings "
               "from less misspeculation and shorter runtime)");
    return 0;
}
