/**
 * @file
 * Figure 9: astar sensitivity to (a) pipelined execution latency delayD,
 * (b) agent queue size queueQ, (c) PRF port sharing portP.
 */

#include "bench_util.h"

using namespace pfm;

int
main()
{
    SimResult base = runSim(benchOptions("astar", "none"));

    reportHeader("Figure 9a: astar vs delayD (clk4_w4 queue32 portALL)");
    struct Ref {
        const char* cfg;
        double paper;
    };
    for (const Ref& r : {Ref{"delay0", 163.0}, Ref{"delay2", 155.0},
                         Ref{"delay4", 150.0}, Ref{"delay8", 138.0}}) {
        SimResult res = runSim(benchOptions(
            "astar", "auto",
            std::string("clk4_w4 queue32 portALL ") + r.cfg));
        reportRowVs(r.cfg, speedupPct(base, res), r.paper);
    }

    reportHeader("Figure 9b: astar vs queueQ (clk4_w4 delay4 portALL)");
    for (const char* q : {"queue8", "queue16", "queue32", "queue64"}) {
        SimResult res = runSim(benchOptions(
            "astar", "auto", std::string("clk4_w4 delay4 portALL ") + q));
        reportRow(q, speedupPct(base, res));
    }
    reportNote("paper: performance is resistant to queue size");

    reportHeader("Figure 9c: astar vs portP (clk4_w4 delay4 queue32)");
    for (const char* p : {"portALL", "portLS", "portLS1"}) {
        SimResult res = runSim(benchOptions(
            "astar", "auto", std::string("clk4_w4 delay4 queue32 ") + p));
        if (std::string(p) == "portLS1")
            reportRowVs(p, speedupPct(base, res), 154.0);
        else
            reportRow(p, speedupPct(base, res));
    }
    reportNote("paper: PRF port availability is not an issue; portLS1 "
               "yields the headline 154%");
    return 0;
}
