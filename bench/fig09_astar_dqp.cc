/**
 * @file
 * Figure 9: astar sensitivity to (a) pipelined execution latency delayD,
 * (b) agent queue size queueQ, (c) PRF port sharing portP.
 */

#include "bench_util.h"

using namespace pfm;

int
main(int argc, char** argv)
{
    struct Ref {
        const char* cfg;
        double paper;
    };
    const Ref delays[] = {{"delay0", 163.0}, {"delay2", 155.0},
                          {"delay4", 150.0}, {"delay8", 138.0}};
    const char* queues[] = {"queue8", "queue16", "queue32", "queue64"};
    const char* ports[] = {"portALL", "portLS", "portLS1"};

    SweepSpec spec;
    RunHandle base = spec.add("base", benchOptions("astar", "none"));
    std::vector<RunHandle> drun, qrun, prun;
    for (const Ref& r : delays)
        drun.push_back(spec.add(
            r.cfg,
            benchOptions("astar", "auto",
                         std::string("clk4_w4 queue32 portALL ") + r.cfg),
            base));
    for (const char* q : queues)
        qrun.push_back(spec.add(
            q,
            benchOptions("astar", "auto",
                         std::string("clk4_w4 delay4 portALL ") + q),
            base));
    for (const char* p : ports)
        prun.push_back(spec.add(
            p,
            benchOptions("astar", "auto",
                         std::string("clk4_w4 delay4 queue32 ") + p),
            base));

    SweepRunner runner = benchRunner(argc, argv);
    runner.run(spec);

    reportHeader("Figure 9a: astar vs delayD (clk4_w4 queue32 portALL)");
    for (size_t i = 0; i < drun.size(); ++i)
        reportRowVs(delays[i].cfg,
                    speedupPct(runner.sim(base), runner.sim(drun[i])),
                    delays[i].paper);

    reportHeader("Figure 9b: astar vs queueQ (clk4_w4 delay4 portALL)");
    for (size_t i = 0; i < qrun.size(); ++i)
        reportRow(queues[i],
                  speedupPct(runner.sim(base), runner.sim(qrun[i])));
    reportNote("paper: performance is resistant to queue size");
    for (size_t i = 0; i < qrun.size(); ++i)
        reportPortStats(queues[i], runner.sim(qrun[i]).ports);

    reportHeader("Figure 9c: astar vs portP (clk4_w4 delay4 queue32)");
    for (size_t i = 0; i < prun.size(); ++i) {
        double speedup = speedupPct(runner.sim(base), runner.sim(prun[i]));
        if (std::string(ports[i]) == "portLS1")
            reportRowVs(ports[i], speedup, 154.0);
        else
            reportRow(ports[i], speedup);
    }
    reportNote("paper: PRF port availability is not an issue; portLS1 "
               "yields the headline 154%");

    emitBenchJson("fig09", spec, runner);
    return 0;
}
