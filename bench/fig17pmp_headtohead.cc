/**
 * @file
 * PMP head-to-head: the pattern-merging prefetcher (one generic component,
 * no per-workload FSM) against the five custom FSM prefetchers on their
 * own workloads, plus two workloads none of the prefetchers were tuned
 * for (astar, bfs-roads). All component rows run with prefetch accounting
 * enabled (pfstats), so every row reports coverage and accuracy next to
 * its speedup; the JSON rows carry the pf_* columns for offline analysis.
 */

#include "bench_util.h"

using namespace pfm;

namespace {

/** The five FSM-prefetcher workloads ("auto" attaches the tuned FSM). */
const char* kTunedWorkloads[] = {"libquantum", "bwaves", "lbm", "milc",
                                 "leslie"};
/** Workloads no prefetcher was tuned for — PMP's generality test. */
const char* kUntunedWorkloads[] = {"astar", "bfs-roads"};

const char* kTokens = "clk4_w4 delay0 queue32 portALL";

SimOptions
pmpOptions(const std::string& workload, const std::string& component)
{
    SimOptions o = benchOptions(workload, component, kTokens);
    if (component != "none")
        applyTokens(o, "pfstats");
    return o;
}

void
reportPfRow(const std::string& label, const SimResult& base,
            const SimResult& run)
{
    if (run.has_pf)
        std::printf("  %-12s %+7.1f%%  cov %5.1f%%  acc %5.1f%%  "
                    "(issued %llu, late %llu)\n",
                    label.c_str(), speedupPct(base, run),
                    run.pf_coverage_pct, run.pf_accuracy_pct,
                    static_cast<unsigned long long>(run.pf_issued),
                    static_cast<unsigned long long>(run.pf_late));
    else
        std::printf("  %-12s %+7.1f%%  (no prefetch accounting)\n",
                    label.c_str(), speedupPct(base, run));
}

} // namespace

int
main(int argc, char** argv)
{
    struct Row {
        std::string workload;
        RunHandle base;
        RunHandle tuned; // invalid for untuned workloads
        RunHandle pmp;
        bool has_tuned;
    };

    SweepSpec spec;
    std::vector<Row> rows;
    for (const char* wl : kTunedWorkloads) {
        Row r;
        r.workload = wl;
        r.base = spec.add(std::string(wl) + "/base", pmpOptions(wl, "none"));
        r.tuned = spec.add(std::string(wl) + "/tuned",
                           pmpOptions(wl, "auto"), r.base);
        r.pmp = spec.add(std::string(wl) + "/pmp", pmpOptions(wl, "pmp"),
                         r.base);
        r.has_tuned = true;
        rows.push_back(r);
    }
    for (const char* wl : kUntunedWorkloads) {
        Row r;
        r.workload = wl;
        r.base = spec.add(std::string(wl) + "/base", pmpOptions(wl, "none"));
        r.pmp = spec.add(std::string(wl) + "/pmp", pmpOptions(wl, "pmp"),
                         r.base);
        r.has_tuned = false;
        rows.push_back(r);
    }

    SweepRunner runner = benchRunner(argc, argv);
    runner.run(spec);

    reportHeader("PMP head-to-head: pattern-merging vs tuned FSM "
                 "prefetchers (clk4_w4 delay0 queue32 portALL)");
    for (const Row& r : rows) {
        const SimResult& base = runner.sim(r.base);
        std::printf("  %s (baseline IPC %.2f):\n", r.workload.c_str(),
                    base.ipc);
        if (r.has_tuned)
            reportPfRow("tuned-fsm", base, runner.sim(r.tuned));
        reportPfRow("pmp", base, runner.sim(r.pmp));
    }
    reportNote("tuned FSMs know their workload's pattern; PMP learns "
               "spatial bit-patterns online and also covers workloads "
               "no FSM was built for");

    emitBenchJson("fig17pmp", spec, runner);
    return 0;
}
