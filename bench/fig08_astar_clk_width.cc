/**
 * @file
 * Figure 8: speedup of the custom astar branch predictor for different
 * frequency dividers (C) and widths (W). All configurations: delay0,
 * queue32, portALL, 8-entry index_queue; perfBP shown for reference.
 */

#include "bench_util.h"

using namespace pfm;

int
main(int argc, char** argv)
{
    struct Ref {
        const char* cfg;
        double paper;
    };
    const Ref refs[] = {
        {"clk4_w1", -20.0}, {"clk8_w1", -35.0}, {"clk8_w2", 20.0},
        {"clk4_w2", 99.0},  {"clk4_w3", 155.0}, {"clk4_w4", 163.0},
        {"clk2_w2", 120.0}, {"clk2_w4", 163.0}, {"clk1_w4", 163.0},
    };

    SweepSpec spec;
    RunHandle base = spec.add("base", benchOptions("astar", "none"));
    std::vector<RunHandle> runs;
    for (const Ref& r : refs) {
        runs.push_back(spec.add(
            r.cfg,
            benchOptions("astar", "auto",
                         std::string(r.cfg) + " delay0 queue32 portALL"),
            base));
    }
    RunHandle perf =
        spec.add("perfBP", benchOptions("astar", "none", "perfBP"), base);

    SweepRunner runner = benchRunner(argc, argv);
    runner.run(spec);

    reportHeader("Figure 8: astar speedup vs clkC_wW "
                 "(delay0 queue32 portALL, 8-entry index_queue)");
    reportNote("baseline MPKI " + std::to_string(runner.sim(base).mpki) +
               " (paper: 31.9)");
    for (size_t i = 0; i < runs.size(); ++i) {
        const Ref& r = refs[i];
        double speedup = speedupPct(runner.sim(base), runner.sim(runs[i]));
        if (r.paper > -30.0 && r.cfg[3] == '4') {
            reportRowVs(r.cfg, speedup, r.paper);
        } else {
            reportRow(r.cfg, speedup);
        }
    }
    reportRowVs("perfBP", speedupPct(runner.sim(base), runner.sim(perf)),
                162.0);

    emitBenchJson("fig08", spec, runner);
    return 0;
}
