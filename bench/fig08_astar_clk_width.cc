/**
 * @file
 * Figure 8: speedup of the custom astar branch predictor for different
 * frequency dividers (C) and widths (W). All configurations: delay0,
 * queue32, portALL, 8-entry index_queue; perfBP shown for reference.
 */

#include "bench_util.h"

using namespace pfm;

int
main()
{
    reportHeader("Figure 8: astar speedup vs clkC_wW "
                 "(delay0 queue32 portALL, 8-entry index_queue)");

    SimResult base = runSim(benchOptions("astar", "none"));
    reportNote("baseline MPKI " + std::to_string(base.mpki) +
               " (paper: 31.9)");

    struct Ref {
        const char* cfg;
        double paper;
    };
    const Ref refs[] = {
        {"clk4_w1", -20.0}, {"clk8_w1", -35.0}, {"clk8_w2", 20.0},
        {"clk4_w2", 99.0},  {"clk4_w3", 155.0}, {"clk4_w4", 163.0},
        {"clk2_w2", 120.0}, {"clk2_w4", 163.0}, {"clk1_w4", 163.0},
    };
    for (const Ref& r : refs) {
        SimOptions o = benchOptions("astar", "auto",
                                    std::string(r.cfg) +
                                        " delay0 queue32 portALL");
        SimResult res = runSim(o);
        if (r.paper > -30.0 && r.cfg[3] == '4') {
            reportRowVs(r.cfg, speedupPct(base, res), r.paper);
        } else {
            reportRow(r.cfg, speedupPct(base, res));
        }
    }

    SimOptions perf = benchOptions("astar", "none", "perfBP");
    SimResult rp = runSim(perf);
    reportRowVs("perfBP", speedupPct(base, rp), 162.0);
    return 0;
}
