/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot structures:
 * TAGE prediction, cache probing, circular queues, timed ports, and the
 * functional engine's interpretation rate.
 *
 * In addition to the usual console table, main() writes
 * BENCH_micro_structures.json (into $PFM_BENCH_JSON_DIR, default cwd)
 * in the perf_diff row shape so `ctest -L perf` can gate the numbers
 * against bench/baselines/. The rows' "wall_ms" field carries
 * *nanoseconds per iteration* — perf_diff compares ratios, so the unit
 * only has to be consistent between baseline and candidate, and ns/iter
 * (unlike the benchmark's accumulated wall time, which google-benchmark
 * holds constant by adapting the iteration count) actually moves when a
 * structure slows down.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "branch/tage_scl.h"
#include "common/circular_queue.h"
#include "common/stats.h"
#include "common/timed_port.h"
#include "isa/assembler.h"
#include "isa/functional_engine.h"
#include "memory/cache.h"

namespace pfm {
namespace {

void
BM_TageSclPredictUpdate(benchmark::State& state)
{
    TageSclPredictor bp;
    std::uint64_t i = 0;
    for (auto _ : state) {
        Addr pc = 0x1000 + (i % 16) * 4;
        bool pred = bp.predict(pc);
        benchmark::DoNotOptimize(pred);
        bp.update(pc, (i & 3) != 0);
        ++i;
    }
}
BENCHMARK(BM_TageSclPredictUpdate);

void
BM_CacheProbe(benchmark::State& state)
{
    Cache c({"c", 32 * 1024, 8, 2, 16});
    for (Addr a = 0; a < 32 * 1024; a += 64)
        c.fill(a, 0, false);
    std::uint64_t i = 0;
    for (auto _ : state) {
        CacheProbe p = c.probe((i * 64) % (32 * 1024), i, true);
        benchmark::DoNotOptimize(p);
        ++i;
    }
}
BENCHMARK(BM_CacheProbe);

void
BM_CircularQueuePushPop(benchmark::State& state)
{
    CircularQueue<std::uint64_t> q(64);
    std::uint64_t i = 0;
    for (auto _ : state) {
        q.push(i);
        benchmark::DoNotOptimize(q.pop());
        ++i;
    }
}
BENCHMARK(BM_CircularQueuePushPop);

void
BM_TimedPortPushPop(benchmark::State& state)
{
    // The agent<->component hot path: CDC-stamped push, avail-gated pop,
    // occupancy + queueing-latency sampling on every packet.
    StatGroup stats;
    TimedPort<std::uint64_t> port(stats, "bm", "u64", 64);
    std::uint64_t i = 0;
    std::uint64_t out = 0;
    for (auto _ : state) {
        port.push(i, i);
        benchmark::DoNotOptimize(port.popReady(out, i + 1));
        benchmark::DoNotOptimize(out);
        ++i;
    }
}
BENCHMARK(BM_TimedPortPushPop);

void
BM_FunctionalEngineLoop(benchmark::State& state)
{
    SimMemory mem;
    Program prog = assemble("  li x2, 1000000000\n"
                            "loop:\n"
                            "  addi x3, x3, 1\n"
                            "  xor x4, x3, x2\n"
                            "  addi x2, x2, -1\n"
                            "  bne x2, x0, loop\n"
                            "  halt\n");
    FunctionalEngine e(prog, mem);
    e.reset(prog.base());
    for (auto _ : state) {
        benchmark::DoNotOptimize(e.step().result);
    }
}
BENCHMARK(BM_FunctionalEngineLoop);

/**
 * ConsoleReporter that additionally captures (name, ns/iter, wall) per
 * run so main() can emit the perf_diff-shaped JSON after the usual
 * console table.
 */
class JsonCaptureReporter : public benchmark::ConsoleReporter
{
  public:
    struct Row {
        std::string name;
        double ns_per_iter = 0;
        double wall_ms = 0;
    };

    void
    ReportRuns(const std::vector<Run>& reports) override
    {
        for (const Run& r : reports) {
            Row row;
            row.name = r.benchmark_name();
            row.ns_per_iter = r.GetAdjustedRealTime();
            row.wall_ms = r.real_accumulated_time * 1e3;
            rows.push_back(row);
        }
        ConsoleReporter::ReportRuns(reports);
    }

    std::vector<Row> rows;
};

} // namespace
} // namespace pfm

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    pfm::JsonCaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);

    const char* dir = std::getenv("PFM_BENCH_JSON_DIR");
    const std::string path =
        std::string(dir ? dir : ".") + "/BENCH_micro_structures.json";
    std::ofstream os(path);
    if (!os)
        return 1;
    double total_ms = 0;
    for (const auto& r : reporter.rows)
        total_ms += r.wall_ms;
    os.setf(std::ios::fixed);
    os.precision(3);
    os << "{\n  \"bench\": \"micro_structures\",\n  \"jobs\": 1,\n"
       << "  \"total_wall_ms\": " << total_ms << ",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < reporter.rows.size(); ++i) {
        const auto& r = reporter.rows[i];
        os << "    {\"label\": \"" << r.name << "\", \"wall_ms\": "
           << r.ns_per_iter << "}"
           << (i + 1 < reporter.rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    benchmark::Shutdown();
    return 0;
}
