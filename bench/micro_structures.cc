/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot structures:
 * TAGE prediction, cache probing, circular queues, and the functional
 * engine's interpretation rate.
 */

#include <benchmark/benchmark.h>

#include "branch/tage_scl.h"
#include "common/circular_queue.h"
#include "isa/assembler.h"
#include "isa/functional_engine.h"
#include "memory/cache.h"

namespace pfm {
namespace {

void
BM_TageSclPredictUpdate(benchmark::State& state)
{
    TageSclPredictor bp;
    std::uint64_t i = 0;
    for (auto _ : state) {
        Addr pc = 0x1000 + (i % 16) * 4;
        bool pred = bp.predict(pc);
        benchmark::DoNotOptimize(pred);
        bp.update(pc, (i & 3) != 0);
        ++i;
    }
}
BENCHMARK(BM_TageSclPredictUpdate);

void
BM_CacheProbe(benchmark::State& state)
{
    Cache c({"c", 32 * 1024, 8, 2, 16});
    for (Addr a = 0; a < 32 * 1024; a += 64)
        c.fill(a, 0, false);
    std::uint64_t i = 0;
    for (auto _ : state) {
        CacheProbe p = c.probe((i * 64) % (32 * 1024), i, true);
        benchmark::DoNotOptimize(p);
        ++i;
    }
}
BENCHMARK(BM_CacheProbe);

void
BM_CircularQueuePushPop(benchmark::State& state)
{
    CircularQueue<std::uint64_t> q(64);
    std::uint64_t i = 0;
    for (auto _ : state) {
        q.push(i);
        benchmark::DoNotOptimize(q.pop());
        ++i;
    }
}
BENCHMARK(BM_CircularQueuePushPop);

void
BM_FunctionalEngineLoop(benchmark::State& state)
{
    SimMemory mem;
    Program prog = assemble("  li x2, 1000000000\n"
                            "loop:\n"
                            "  addi x3, x3, 1\n"
                            "  xor x4, x3, x2\n"
                            "  addi x2, x2, -1\n"
                            "  bne x2, x0, loop\n"
                            "  halt\n");
    FunctionalEngine e(prog, mem);
    e.reset(prog.base());
    for (auto _ : state) {
        benchmark::DoNotOptimize(e.step().result);
    }
}
BENCHMARK(BM_FunctionalEngineLoop);

} // namespace
} // namespace pfm

BENCHMARK_MAIN();
