/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot structures:
 * TAGE prediction, cache probing, circular queues, timed ports, and the
 * functional engine's interpretation rate.
 *
 * In addition to the usual console table, main() writes
 * BENCH_micro_structures.json (into $PFM_BENCH_JSON_DIR, default cwd)
 * in the perf_diff row shape so `ctest -L perf` can gate the numbers
 * against bench/baselines/. The rows' "wall_ms" field carries
 * *nanoseconds per iteration* — perf_diff compares ratios, so the unit
 * only has to be consistent between baseline and candidate, and ns/iter
 * (unlike the benchmark's accumulated wall time, which google-benchmark
 * holds constant by adapting the iteration count) actually moves when a
 * structure slows down. Each row also carries the same number as
 * "ns_per_op" under its honest name. PFM_MICRO_REPS=N runs every
 * benchmark N times and keeps the min — the stable statistic on a noisy
 * host.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "branch/tage_scl.h"
#include "common/circular_queue.h"
#include "common/stats.h"
#include "common/timed_port.h"
#include "isa/assembler.h"
#include "isa/functional_engine.h"
#include "memory/cache.h"

namespace pfm {
namespace {

void
BM_TageSclPredictUpdate(benchmark::State& state)
{
    TageSclPredictor bp;
    std::uint64_t i = 0;
    for (auto _ : state) {
        Addr pc = 0x1000 + (i % 16) * 4;
        bool pred = bp.predict(pc);
        benchmark::DoNotOptimize(pred);
        bp.update(pc, (i & 3) != 0);
        ++i;
    }
}
BENCHMARK(BM_TageSclPredictUpdate);

void
BM_TageBankProbe(benchmark::State& state)
{
    // Bank-probe path in isolation: a fresh PC every iteration defeats
    // the (pc, generation) memo, so each predict() pays the full
    // fold-hash + N-bank tag-compare walk the SoA arena optimizes. No
    // update() — history stays fixed, keeping the fold state cold-path
    // free so the probe cost dominates.
    TagePredictor bp;
    // Touch enough distinct PCs to sweep the 10-bit banks.
    std::uint64_t i = 0;
    for (auto _ : state) {
        Addr pc = 0x1000 + (i % 4096) * 4;
        bool pred = bp.predict(pc);
        benchmark::DoNotOptimize(pred);
        ++i;
    }
}
BENCHMARK(BM_TageBankProbe);

/**
 * Standalone mirror of the core's two-plane instruction slab
 * (core/core.h InstHot/InstCold): Core's planes are private, so the
 * scheduler-scan benchmark reproduces the layout — a 48-byte hot record
 * with everything the issue loop reads, and a fat cold record that the
 * scan must never touch. Keep the shapes in sync with core.h when the
 * planes change.
 */
struct BmInstHot {
    enum : std::uint8_t { kFrontend, kWaiting, kIssued, kDone };
    std::uint8_t state = kWaiting;
    std::uint8_t cls = 0;
    bool is_load = false;
    bool is_store = false;
    std::uint64_t src1 = ~0ull;
    std::uint64_t src2 = ~0ull;
    std::uint64_t complete_cycle = ~0ull;
    std::uint64_t dispatch_ready = 0;
    std::uint64_t mem_barrier = ~0ull;
};

struct BmInstCold {
    std::uint64_t payload[22]; ///< DynInst + misc bookkeeping stand-in
};

void
BM_InstRecScan(benchmark::State& state)
{
    // The issue-select inner loop over a full 96-entry IQ against a
    // 256-slot ROB window: wakeup checks (producer complete?) plus the
    // load/barrier test, all answerable from the hot plane alone.
    constexpr std::uint64_t kSlab = 256;
    std::vector<BmInstHot> hot(kSlab);
    std::vector<BmInstCold> cold(kSlab); // present, deliberately untouched
    std::vector<std::uint64_t> iq;
    for (std::uint64_t s = 0; s < 96; ++s)
        iq.push_back(s * 2 + 1);
    for (std::uint64_t s = 0; s < kSlab; ++s) {
        hot[s].src1 = (s >= 3) ? s - 3 : ~0ull;
        hot[s].src2 = (s >= 7 && s % 5 == 0) ? s - 7 : ~0ull;
        hot[s].is_load = (s % 4 == 0);
        hot[s].mem_barrier = (s % 8 == 0 && s >= 16) ? s - 16 : ~0ull;
        hot[s].complete_cycle = (s % 3 == 0) ? 100 + s : ~0ull;
        hot[s].state = (s % 3 == 0) ? BmInstHot::kDone : BmInstHot::kWaiting;
    }
    benchmark::DoNotOptimize(cold.data());

    std::uint64_t now = 500;
    for (auto _ : state) {
        unsigned ready = 0;
        for (std::uint64_t seq : iq) {
            const BmInstHot& e = hot[seq & (kSlab - 1)];
            auto src_ready = [&](std::uint64_t p) {
                if (p == ~0ull)
                    return true;
                const BmInstHot& h = hot[p & (kSlab - 1)];
                return h.complete_cycle != ~0ull && h.complete_cycle <= now;
            };
            if (!src_ready(e.src1) || !src_ready(e.src2))
                continue;
            if (e.is_load && e.mem_barrier != ~0ull) {
                const BmInstHot& s = hot[e.mem_barrier & (kSlab - 1)];
                if (s.state != BmInstHot::kFrontend &&
                    (s.complete_cycle == ~0ull || s.complete_cycle > now))
                    continue;
            }
            ++ready;
        }
        benchmark::DoNotOptimize(ready);
        ++now;
    }
}
BENCHMARK(BM_InstRecScan);

void
BM_CacheProbe(benchmark::State& state)
{
    Cache c({"c", 32 * 1024, 8, 2, 16});
    for (Addr a = 0; a < 32 * 1024; a += 64)
        c.fill(a, 0, false);
    std::uint64_t i = 0;
    for (auto _ : state) {
        CacheProbe p = c.probe((i * 64) % (32 * 1024), i, true);
        benchmark::DoNotOptimize(p);
        ++i;
    }
}
BENCHMARK(BM_CacheProbe);

void
BM_CircularQueuePushPop(benchmark::State& state)
{
    CircularQueue<std::uint64_t> q(64);
    std::uint64_t i = 0;
    for (auto _ : state) {
        q.push(i);
        benchmark::DoNotOptimize(q.pop());
        ++i;
    }
}
BENCHMARK(BM_CircularQueuePushPop);

void
BM_TimedPortPushPop(benchmark::State& state)
{
    // The agent<->component hot path: CDC-stamped push, avail-gated pop,
    // occupancy + queueing-latency sampling on every packet.
    StatGroup stats;
    TimedPort<std::uint64_t> port(stats, "bm", "u64", 64);
    std::uint64_t i = 0;
    std::uint64_t out = 0;
    for (auto _ : state) {
        port.push(i, i);
        benchmark::DoNotOptimize(port.popReady(out, i + 1));
        benchmark::DoNotOptimize(out);
        ++i;
    }
}
BENCHMARK(BM_TimedPortPushPop);

void
BM_FunctionalEngineLoop(benchmark::State& state)
{
    SimMemory mem;
    Program prog = assemble("  li x2, 1000000000\n"
                            "loop:\n"
                            "  addi x3, x3, 1\n"
                            "  xor x4, x3, x2\n"
                            "  addi x2, x2, -1\n"
                            "  bne x2, x0, loop\n"
                            "  halt\n");
    FunctionalEngine e(prog, mem);
    e.reset(prog.base());
    for (auto _ : state) {
        benchmark::DoNotOptimize(e.step().result);
    }
}
BENCHMARK(BM_FunctionalEngineLoop);

/**
 * ConsoleReporter that additionally captures (name, ns/iter, wall) per
 * run so main() can emit the perf_diff-shaped JSON after the usual
 * console table.
 */
class JsonCaptureReporter : public benchmark::ConsoleReporter
{
  public:
    struct Row {
        std::string name;
        double ns_per_iter = 0;
        double wall_ms = 0;
    };

    void
    ReportRuns(const std::vector<Run>& reports) override
    {
        for (const Run& r : reports) {
            // With --benchmark_repetitions, mean/median/stddev aggregate
            // rows follow the per-repetition rows; the JSON keeps only
            // real measurements (repetitions fold to min in main()).
            if (r.run_type == Run::RT_Aggregate)
                continue;
            Row row;
            row.name = r.benchmark_name();
            row.ns_per_iter = r.GetAdjustedRealTime();
            row.wall_ms = r.real_accumulated_time * 1e3;
            rows.push_back(row);
        }
        ConsoleReporter::ReportRuns(reports);
    }

    std::vector<Row> rows;
};

} // namespace
} // namespace pfm

int
main(int argc, char** argv)
{
    // PFM_MICRO_REPS=N repeats every benchmark N times; the JSON then
    // carries the min across repetitions, which on a noisy host is the
    // stable statistic (noise only ever adds time).
    std::vector<char*> args(argv, argv + argc);
    std::string reps_flag;
    if (const char* reps = std::getenv("PFM_MICRO_REPS")) {
        reps_flag = std::string("--benchmark_repetitions=") + reps;
        args.push_back(reps_flag.data());
    }
    int args_argc = static_cast<int>(args.size());
    benchmark::Initialize(&args_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_argc, args.data()))
        return 1;
    pfm::JsonCaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);

    // Fold repetitions: one row per benchmark, min ns/iter, summed wall.
    std::vector<pfm::JsonCaptureReporter::Row> rows;
    for (const auto& r : reporter.rows) {
        pfm::JsonCaptureReporter::Row* found = nullptr;
        for (auto& row : rows)
            if (row.name == r.name)
                found = &row;
        if (!found) {
            rows.push_back(r);
        } else {
            found->ns_per_iter = std::min(found->ns_per_iter, r.ns_per_iter);
            found->wall_ms += r.wall_ms;
        }
    }

    const char* dir = std::getenv("PFM_BENCH_JSON_DIR");
    const std::string path =
        std::string(dir ? dir : ".") + "/BENCH_micro_structures.json";
    std::ofstream os(path);
    if (!os)
        return 1;
    double total_ms = 0;
    for (const auto& r : rows)
        total_ms += r.wall_ms;
    os.setf(std::ios::fixed);
    os.precision(3);
    os << "{\n  \"bench\": \"micro_structures\",\n  \"jobs\": 1,\n"
       << "  \"total_wall_ms\": " << total_ms << ",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        // "wall_ms" carries ns/iter (see the file comment); "ns_per_op"
        // is the same number under its honest name for human readers and
        // newer tooling. perf_diff ignores keys it does not know.
        os << "    {\"label\": \"" << r.name << "\", \"wall_ms\": "
           << r.ns_per_iter << ", \"ns_per_op\": " << r.ns_per_iter << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    benchmark::Shutdown();
    return 0;
}
