/**
 * @file
 * Demonstrates the adaptive prefetch-distance feedback (Section 4.3) on
 * libquantum, using the library API directly (workload -> engine -> core
 * -> PfmSystem -> FsmPrefetcher): fixed distances are swept by pinning
 * the controller (step=0), then the adaptive controller is run.
 */

#include <cstdio>

#include "components/prefetch_engine.h"
#include "core/core.h"
#include "sim/simulator.h"
#include "workloads/registry.h"

using namespace pfm;

namespace {

double
runLibquantum(bool attach_prefetcher, const AdaptiveDistance::Params& ad)
{
    Workload w = makeWorkload("libquantum");
    HierarchyParams hp;
    Hierarchy mem(hp);
    FunctionalEngine engine(w.program, *w.mem);
    engine.reset(w.entry);
    for (const auto& [reg, val] : w.init_regs)
        engine.setReg(reg, val);
    CoreParams cp;
    Core core(cp, engine, mem);

    PfmParams pp; // clk4_w4 queue32 defaults
    PfmSystem pfm(pp, mem, engine.commitLog());
    if (attach_prefetcher) {
        std::uint64_t nodes = w.metaVal("nodes");
        std::uint64_t stride = w.metaVal("stride");
        PrefetchStream s;
        s.name = "toffoli";
        s.base = w.dataAddr("reg");
        s.levels = {{1u << 20, 0},
                    {nodes, static_cast<std::int64_t>(stride)}};
        s.unit_elems = kLineBytes / stride;
        s.events_per_unit = static_cast<double>(kLineBytes / stride);
        s.feedback_pc = w.pc("del_load_tof");
        PrefetchStream sig = s;
        sig.name = "sigma";
        sig.feedback_pc = w.pc("del_load_sig");
        FsmPrefetcher::attach(pfm, w, {s, sig}, ad);
        core.setHooks(&pfm);
    }

    const std::uint64_t warmup = 100'000, run = 600'000;
    while (!core.done() && core.retired() < warmup)
        core.tick();
    core.resetStats();
    while (!core.done() && core.retired() < warmup + run)
        core.tick();
    return core.ipc();
}

} // namespace

int
main()
{
    std::printf("=== Adaptive prefetch distance on libquantum ===\n\n");

    double base = runLibquantum(false, {});
    std::printf("baseline (next-2-line + VLDP only): IPC %.3f\n\n", base);

    std::printf("fixed prefetch distances (adaptation pinned):\n");
    for (unsigned dist : {2u, 8u, 32u, 96u}) {
        AdaptiveDistance::Params ad;
        ad.initial = dist;
        ad.step = 0; // never moves
        double ipc = runLibquantum(true, ad);
        std::printf("  distance %3u: IPC %.3f  (%+.0f%%)\n", dist, ipc,
                    (ipc / base - 1.0) * 100.0);
    }

    AdaptiveDistance::Params adaptive; // defaults: probes upward per epoch
    double ipc = runLibquantum(true, adaptive);
    std::printf("\nadaptive controller: IPC %.3f  (%+.0f%%)\n", ipc,
                (ipc / base - 1.0) * 100.0);
    std::printf("(the controller should land near the best fixed "
                "distance)\n");
    return 0;
}
