/**
 * @file
 * Quickstart: run any workload on the Table-1 superscalar core, with or
 * without its PFM custom component, in the paper's parameter notation.
 *
 *   ./quickstart --workload=astar --component=auto clk4_w4 delay4 \
 *       queue32 portLS1 --instructions=1000000
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "sim/simulator.h"
#include "sim/stats_io.h"

int
main(int argc, char** argv)
{
    std::string stats_csv;
    bool print_config = false;
    std::vector<char*> passthrough;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--print-config") {
            print_config = true;
        } else if (arg.rfind("--stats-csv=", 0) == 0) {
            stats_csv = arg.substr(std::string("--stats-csv=").size());
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    pfm::SimOptions opt = pfm::parseCommandLine(
        static_cast<int>(passthrough.size()), passthrough.data());

    if (print_config) {
        std::fputs(pfm::configSummary(opt.core, opt.mem).c_str(), stdout);
        std::printf("  PFM                  : %s\n",
                    pfm::pfmSummary(opt.pfm).c_str());
    }

    std::printf("workload:   %s\n", opt.workload.c_str());
    std::printf("component:  %s\n", opt.component.c_str());
    std::printf("pfm config: %s\n", opt.pfm.tag().c_str());

    pfm::Simulator sim(opt);
    pfm::SimResult r = sim.run();

    std::printf("\ninstructions: %llu\n",
                (unsigned long long)r.instructions);
    std::printf("cycles:       %llu\n", (unsigned long long)r.cycles);
    std::printf("IPC:          %.3f\n", r.ipc);
    std::printf("MPKI:         %.2f\n", r.mpki);
    if (sim.pfm()) {
        std::printf("RST hit %%:    %.1f\n", r.rst_hit_pct);
        std::printf("FST hit %%:    %.1f\n", r.fst_hit_pct);
    }
    if (!stats_csv.empty()) {
        std::ofstream csv(stats_csv);
        std::vector<const pfm::StatGroup*> groups = {
            &sim.core().stats(), &sim.memory().stats(),
            &sim.memory().l1d().stats(), &sim.memory().l2().stats(),
            &sim.memory().l3().stats(), &sim.memory().dram().stats()};
        if (sim.pfm())
            groups.push_back(&sim.pfm()->stats());
        pfm::writeStatsCsv(csv, groups);
        std::printf("stats written to %s\n", stats_csv.c_str());
    }
    if (std::getenv("PFM_DUMP_STATS")) {
        sim.core().stats().dump(std::cout);
        sim.memory().stats().dump(std::cout);
        sim.memory().l1d().stats().dump(std::cout);
        sim.memory().l2().stats().dump(std::cout);
        sim.memory().l3().stats().dump(std::cout);
        sim.memory().dram().stats().dump(std::cout);
        if (sim.pfm())
            sim.pfm()->stats().dump(std::cout);
    }
    return 0;
}
