/**
 * @file
 * Section 2.4 demo: a deliberately buggy custom component stops sending
 * predictions mid-run; the Fetch Agent's watchdog trips the chicken
 * switch and the core falls back to its own predictor instead of hanging.
 */

#include <cstdio>

#include "components/astar_predictor.h"
#include "core/core.h"
#include "sim/simulator.h"
#include "workloads/registry.h"

using namespace pfm;

namespace {

/** Astar predictor that goes silent after a while (a "deployed bug"). */
class BuggyAstarPredictor : public AstarPredictor
{
  public:
    using AstarPredictor::AstarPredictor;

  protected:
    void
    rfStep(Cycle now) override
    {
        if (now > 120'000)
            return; // bug: engines wedge, IntQ-F starves
        AstarPredictor::rfStep(now);
    }
};

double
run(bool watchdog)
{
    Workload w = makeWorkload("astar");
    HierarchyParams hp;
    Hierarchy mem(hp);
    FunctionalEngine engine(w.program, *w.mem);
    engine.reset(w.entry);
    for (const auto& [reg, val] : w.init_regs)
        engine.setReg(reg, val);
    CoreParams cp;
    Core core(cp, engine, mem);

    PfmParams pp;
    pp.watchdog_cycles = watchdog ? 5'000 : 0;
    PfmSystem pfm(pp, mem, engine.commitLog());

    // Configure snoop tables exactly as the normal factory does, but
    // install the buggy component.
    AstarPredictorOptions opt;
    AstarPredictor::attach(pfm, w, opt); // sets up RST/FST
    pfm.setComponent(std::make_unique<BuggyAstarPredictor>(w, opt));
    core.setHooks(&pfm);

    const Cycle limit = 600'000;
    while (!core.done() && core.cycle() < limit)
        core.tick();
    std::printf("  watchdog %-3s: %8llu instructions in %llu cycles "
                "(IPC %.3f)%s\n",
                watchdog ? "on" : "off",
                (unsigned long long)core.retired(),
                (unsigned long long)core.cycle(),
                static_cast<double>(core.retired()) /
                    static_cast<double>(core.cycle()),
                watchdog && pfm.stats().get("watchdog_disables")
                    ? "  [chicken switch fired]"
                    : "");
    return static_cast<double>(core.retired());
}

} // namespace

int
main()
{
    std::printf("=== Buggy component vs the Fetch Agent watchdog ===\n");
    std::printf("The component stops producing predictions at cycle "
                "120k;\nwithout the watchdog, fetch stalls forever on the "
                "empty IntQ-F.\n\n");
    double without = run(false);
    double with = run(true);
    std::printf("\nwith the chicken switch the run retires %.1fx more "
                "instructions\n",
                with / without);
    return 0;
}
