/**
 * @file
 * Tour of the astar custom branch predictor: runs the baseline, perfect
 * branch prediction, and the PFM component, then shows what the component
 * machinery did (loads issued, predictions streamed, squash replays,
 * store-inference patches) — the Section 4.1 story end to end.
 */

#include <cstdio>
#include <iostream>

#include "sim/simulator.h"

using namespace pfm;

namespace {

SimOptions
opts(const char* component, const char* tokens = "")
{
    SimOptions o;
    o.workload = "astar";
    o.component = component;
    o.warmup_instructions = 100'000;
    o.max_instructions = 800'000;
    if (*tokens)
        applyTokens(o, tokens);
    return o;
}

} // namespace

int
main()
{
    std::printf("=== The astar ROI (Figure 6) ===\n");
    std::printf("Two data-dependent branches per neighbor cell (waymap, "
                "maparp)\ndefeat TAGE-SC-L; the custom component "
                "pre-computes them from\ncommitted memory + an index1 CAM "
                "that infers in-flight stores.\n\n");

    SimResult base = runSim(opts("none"));
    std::printf("baseline:   IPC %.3f  MPKI %5.1f\n", base.ipc, base.mpki);

    SimResult perf = runSim(opts("none", "perfBP"));
    std::printf("perfect BP: IPC %.3f  (+%.0f%%)\n", perf.ipc,
                speedupPct(base, perf));

    SimOptions o = opts("auto", "clk4_w4 delay4 queue32 portLS1");
    Simulator sim(o);
    SimResult with = sim.run();
    std::printf("PFM:        IPC %.3f  MPKI %5.2f  (+%.0f%%)\n\n", with.ipc,
                with.mpki, speedupPct(base, with));

    std::printf("=== Component activity (measured phase) ===\n");
    sim.pfm()->stats().dump(std::cout);
    return 0;
}
