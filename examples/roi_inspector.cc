/**
 * @file
 * The PFM development workflow's first step (paper Section 1: "analyzing
 * their bottlenecks"): run a workload on the baseline core and print its
 * hardest branches and most delinquent loads with disassembly, i.e. the
 * information a PFM engineer uses to design a custom component.
 *
 *   ./roi_inspector --workload=astar
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "sim/simulator.h"

using namespace pfm;

namespace {

struct Hot {
    Addr pc;
    std::uint64_t count;
};

std::vector<Hot>
topN(const std::unordered_map<Addr, std::uint64_t>& profile, size_t n)
{
    std::vector<Hot> v;
    v.reserve(profile.size());
    for (const auto& [pc, count] : profile)
        v.push_back({pc, count});
    std::sort(v.begin(), v.end(),
              [](const Hot& a, const Hot& b) { return a.count > b.count; });
    if (v.size() > n)
        v.resize(n);
    return v;
}

std::string
annotate(const Workload& w, Addr pc)
{
    for (const auto& [name, apc] : w.pcs) {
        if (apc == pc)
            return " <" + name + ">";
    }
    return "";
}

} // namespace

int
main(int argc, char** argv)
{
    SimOptions opt = parseCommandLine(argc, argv);
    opt.component = "none";
    if (opt.max_instructions > 1'000'000)
        opt.max_instructions = 1'000'000;

    Simulator sim(opt);
    SimResult r = sim.run();
    const Workload& w = sim.workload();

    std::printf("=== %s on the baseline core ===\n", w.name.c_str());
    std::printf("IPC %.3f, MPKI %.1f over %llu instructions\n\n", r.ipc,
                r.mpki, (unsigned long long)r.instructions);

    std::printf("hardest conditional branches (misprediction counts):\n");
    for (const Hot& h : topN(sim.core().mispredictProfile(), 10)) {
        std::printf("  %6llx  %8llu  %s%s\n", (unsigned long long)h.pc,
                    (unsigned long long)h.count,
                    formatInst(w.program.instAt(h.pc)).c_str(),
                    annotate(w, h.pc).c_str());
    }

    std::printf("\nmost delinquent loads (miss depth-weighted):\n");
    for (const Hot& h : topN(sim.core().missProfile(), 10)) {
        std::printf("  %6llx  %8llu  %s%s\n", (unsigned long long)h.pc,
                    (unsigned long long)h.count,
                    formatInst(w.program.instAt(h.pc)).c_str(),
                    annotate(w, h.pc).c_str());
    }

    std::printf("\nThese PCs are exactly what a PFM bitstream configures "
                "the FST/RST with\n(compare with the workload's annotated "
                "br_*/del_* labels above).\n");
    return 0;
}
